//! Simple blocked SGEMM kernels.
//!
//! These are the compute workhorses for convolution (via im2col) and linear
//! layers. The implementation uses an `i-k-j` loop order with a row broadcast,
//! which vectorises well under `-O` and is fast enough for the reduced-scale
//! training experiments this reproduction runs.

/// `C += A * B` where `A` is `m x k`, `B` is `k x n`, `C` is `m x n`,
/// all row-major.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths disagree with the dims.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// `C += A^T * B` where `A` is `k x m`, `B` is `k x n`, `C` is `m x n`.
///
/// Used for weight gradients: `dW = dY^T * X` style products without
/// materialising transposes.
pub fn matmul_at_b(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_pi * b_v;
            }
        }
    }
}

/// `C += A * B^T` where `A` is `m x k`, `B` is `n x k`, `C` is `m x n`.
///
/// Used for input gradients of linear layers (`dX = dY * W`between row-major
/// weight layouts) without materialising transposes.
pub fn matmul_a_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *c_v += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive() {
        let mut rng = SeededRng::new(1);
        let (m, k, n) = (5, 7, 3);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        let expect = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4, "{} vs {}", x, y);
        }
    }

    #[test]
    fn at_b_matches_naive() {
        let mut rng = SeededRng::new(2);
        let (k, m, n) = (4, 6, 5);
        let a: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect(); // k x m
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect(); // k x n
        let mut c = vec![0.0; m * n];
        matmul_at_b(k, m, n, &a, &b, &mut c);
        // naive: c[i,j] = sum_p a[p,i] * b[p,j]
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[p * m + i] * b[p * n + j];
                }
                assert!((c[i * n + j] - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn a_bt_matches_naive() {
        let mut rng = SeededRng::new(3);
        let (m, k, n) = (3, 8, 4);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect(); // m x k
        let b: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect(); // n x k
        let mut c = vec![0.0; m * n];
        matmul_a_bt(m, k, n, &a, &b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[j * k + p];
                }
                assert!((c[i * n + j] - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 0.0, 0.0, 2.0];
        let mut c = vec![1.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0]);
    }
}
