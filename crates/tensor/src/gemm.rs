//! Blocked/tiled SGEMM kernels.
//!
//! These are the compute workhorses for convolution (via im2col) and linear
//! layers. All three entry points (`C += A·B`, `C += Aᵀ·B`, `C += A·Bᵀ`)
//! lower to one register-blocked micro-kernel over cache-sized packed
//! panels, in the classic Goto/BLIS structure:
//!
//! * the innermost micro-kernel computes an `MR x NR` block of `C` held in
//!   registers, streaming through a packed depth-`kc` panel;
//! * `A` panels are packed into `MR`-row strips and `B` panels into
//!   `NR`-column strips, so the micro-kernel reads both operands
//!   contiguously regardless of the caller's layout (normal or transposed);
//! * outer loops tile `n` by `NC`, `k` by `KC` and `m` by `MC` so each
//!   packed panel stays cache-resident while it is reused.
//!
//! Determinism contract: for a fixed depth `k`, every output element
//! accumulates its `k` products in increasing-`k` order, with panel partial
//! sums added to `C` in increasing panel order. The order never depends on
//! `m` or `n`, so results are *batch-size invariant* — the property the
//! serving engine's bitwise batched-vs-per-sample identity rests on.
//!
//! Two hot-path amortisations sit on top of the kernel, both bit-exact:
//!
//! * [`PackedMatrix`] captures the packed panels of one operand as a
//!   reusable artifact, so a weight matrix that multiplies every batch
//!   (conv/linear forward) is packed **once** and the per-call work reduces
//!   to packing the activation operand. The stored panels are byte-for-byte
//!   what `pack_a`/`pack_b` would produce, so the micro-kernel consumes
//!   identical operands in the identical order — results are bitwise equal
//!   to the pack-every-call path.
//! * every entry point has a `_ws` variant taking a
//!   [`Workspace`](crate::Workspace) that backs the per-call pack scratch,
//!   eliminating the two `vec![0.0; …]` allocations per GEMM in steady
//!   state. The non-`_ws` wrappers behave exactly as before.

use crate::buf::AlignedBuf;
use crate::simd::{self, SimdOps, MR, NR};
use crate::workspace::Workspace;

/// Depth (`k`) cache block: one packed `A` strip of `MR x KC` and one packed
/// `B` strip of `KC x NR` together stay L1-resident.
const KC: usize = 256;
/// Row (`m`) cache block: the packed `MC x KC` block of `A` targets L2.
const MC: usize = 128;
/// Column (`n`) cache block: the packed `KC x NC` block of `B` targets L2/L3.
const NC: usize = 256;

/// How a logical `rows x cols` operand is stored.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// `data[r * ld + c]`.
    RowMajor,
    /// Stored transposed: `data[c * ld + r]`.
    Transposed,
}

/// A logical matrix view over a caller slice (no copy).
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    ld: usize,
    layout: Layout,
}

impl View<'_> {
    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        match self.layout {
            Layout::RowMajor => self.data[r * self.ld + c],
            Layout::Transposed => self.data[c * self.ld + r],
        }
    }
}

// tia-lint: hot-path(begin)
/// Packs the `mc x kc` block of `a` at `(ic, pc)` into `MR`-row strips:
/// strip `r` holds rows `ic + r*MR ..`, stored depth-major so the
/// micro-kernel reads `MR` consecutive values per `k` step. Rows past `mc`
/// are zero-padded (they multiply into lanes that are never stored).
///
/// Packing is a pure reshuffle — the panel bytes are identical for every
/// backend; `ops` only accelerates the contiguous fast path (a transposed
/// view walks `MR` consecutive source elements per `k` step).
fn pack_a(ops: &dyn SimdOps, a: View, ic: usize, pc: usize, mc: usize, kc: usize, out: &mut [f32]) {
    let mut idx = 0;
    for ir in (0..mc).step_by(MR) {
        let mr = MR.min(mc - ir);
        if mr == MR && a.layout == Layout::Transposed {
            for p in 0..kc {
                let src = (pc + p) * a.ld + ic + ir;
                ops.pack_row_f32(&a.data[src..src + MR], &mut out[idx..idx + MR]);
                idx += MR;
            }
            continue;
        }
        for p in 0..kc {
            for i in 0..MR {
                out[idx] = if i < mr {
                    a.at(ic + ir + i, pc + p)
                } else {
                    0.0
                };
                idx += 1;
            }
        }
    }
}

/// Packs the `kc x nc` block of `b` at `(pc, jc)` into `NR`-column strips,
/// depth-major, zero-padding columns past `nc`. Same bytes on every backend;
/// the row-major full-strip case copies `NR` contiguous elements per step.
fn pack_b(ops: &dyn SimdOps, b: View, pc: usize, jc: usize, kc: usize, nc: usize, out: &mut [f32]) {
    let mut idx = 0;
    for jr in (0..nc).step_by(NR) {
        let nr = NR.min(nc - jr);
        if nr == NR && b.layout == Layout::RowMajor {
            for p in 0..kc {
                let src = (pc + p) * b.ld + jc + jr;
                ops.pack_row_f32(&b.data[src..src + NR], &mut out[idx..idx + NR]);
                idx += NR;
            }
            continue;
        }
        for p in 0..kc {
            for j in 0..NR {
                out[idx] = if j < nr {
                    b.at(pc + p, jc + jr + j)
                } else {
                    0.0
                };
                idx += 1;
            }
        }
    }
}
// tia-lint: hot-path(end)

/// Which operand of the product a [`PackedMatrix`] stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    /// The left operand `A` (`MR`-row strips, as `pack_a` lays out).
    Lhs,
    /// The right operand `B` (`NR`-column strips, as `pack_b` lays out).
    Rhs,
}

/// One operand of the GEMM, prepacked into the exact cache-block panels the
/// micro-kernel consumes.
///
/// Packing a matrix costs one pass over its elements; in serving, the
/// weight operand of every conv/linear product is identical batch after
/// batch, so `Conv2d`/`Linear` memoize a `PackedMatrix` per precision and a
/// random precision switch costs a lookup instead of a re-pack. The stored
/// panels are byte-identical to what the per-call packers produce, making
/// prepacked products bitwise equal to plain [`gemm`]/[`matmul_a_bt`].
///
/// # Example
///
/// ```
/// use tia_tensor::{gemm, PackedMatrix, Workspace};
/// let (m, k, n) = (3, 5, 4);
/// let a: Vec<f32> = (0..m * k).map(|v| v as f32).collect();
/// let b: Vec<f32> = (0..k * n).map(|v| v as f32).collect();
/// let mut want = vec![0.0; m * n];
/// gemm(m, k, n, &a, &b, &mut want);
/// let packed = PackedMatrix::pack_lhs(m, k, &a);
/// let mut ws = Workspace::new();
/// let mut got = vec![0.0; m * n];
/// packed.gemm_lhs(n, &b, &mut got, &mut ws);
/// assert_eq!(got, want);
/// ```
#[derive(Debug, Clone)]
pub struct PackedMatrix {
    side: Side,
    /// Logical row count (`m` for an Lhs, `k` for an Rhs).
    rows: usize,
    /// Logical column count (`k` for an Lhs, `n` for an Rhs).
    cols: usize,
    /// All panels, concatenated in `(outer block, inner block)` order,
    /// 64-byte aligned for split-free SIMD panel loads.
    data: AlignedBuf,
    /// Panel start offsets plus a trailing total, indexed
    /// `outer_block * inner_blocks + inner_block`.
    offsets: Vec<usize>,
    /// Inner block count (`m`-blocks for Lhs, `n`-blocks for Rhs).
    inner_blocks: usize,
}

impl PackedMatrix {
    /// Packs the left operand `A` (`m x k`, row-major).
    pub fn pack_lhs(m: usize, k: usize, a: &[f32]) -> Self {
        debug_assert_eq!(a.len(), m * k);
        Self::pack_side(
            Side::Lhs,
            m,
            k,
            View {
                data: a,
                ld: k,
                layout: Layout::RowMajor,
            },
        )
    }

    /// Packs the right operand `B` (`k x n`, row-major).
    pub fn pack_rhs(k: usize, n: usize, b: &[f32]) -> Self {
        debug_assert_eq!(b.len(), k * n);
        Self::pack_side(
            Side::Rhs,
            k,
            n,
            View {
                data: b,
                ld: n,
                layout: Layout::RowMajor,
            },
        )
    }

    /// Packs the right operand `B = Wᵀ` where `w` is stored `n x k`
    /// row-major — the linear-layer weight layout (`[out, in]`), consumed as
    /// the logical `k x n` right operand of `Y = X · Wᵀ` without
    /// materialising the transpose.
    pub fn pack_rhs_transposed(n: usize, k: usize, w: &[f32]) -> Self {
        debug_assert_eq!(w.len(), n * k);
        Self::pack_side(
            Side::Rhs,
            k,
            n,
            View {
                data: w,
                ld: k,
                layout: Layout::Transposed,
            },
        )
    }

    fn pack_side(side: Side, rows: usize, cols: usize, view: View) -> Self {
        // Blocking mirrors gemm_blocked exactly: outer blocks step the depth
        // (k) by KC; inner blocks step m by MC (Lhs) or n by NC (Rhs).
        let (k, span, inner_step, strip) = match side {
            Side::Lhs => (cols, rows, MC, MR),
            Side::Rhs => (rows, cols, NC, NR),
        };
        let inner_blocks = span.div_ceil(inner_step).max(1);
        let outer_blocks = k.div_ceil(KC).max(1);
        let mut data = AlignedBuf::new();
        let mut offsets = Vec::with_capacity(outer_blocks * inner_blocks + 1);
        // Panels are byte-identical whichever backend packs them; the pinned
        // scalar reference keeps prepacking off the dispatch surface.
        let ops: &dyn SimdOps = &simd::SCALAR;
        for pc in (0..k.max(1)).step_by(KC) {
            let kc = KC.min(k - pc.min(k));
            for iv in (0..span.max(1)).step_by(inner_step) {
                let len_inner = inner_step.min(span - iv.min(span));
                offsets.push(data.len());
                let panel_len = len_inner.div_ceil(strip) * strip * kc;
                let start = data.len();
                data.resize(start + panel_len, 0.0);
                match side {
                    Side::Lhs => pack_a(ops, view, iv, pc, len_inner, kc, &mut data[start..]),
                    Side::Rhs => pack_b(ops, view, pc, iv, kc, len_inner, &mut data[start..]),
                }
            }
        }
        offsets.push(data.len());
        Self {
            side,
            rows,
            cols,
            data,
            offsets,
            inner_blocks,
        }
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bytes of packed panel storage (capacity planning / tests).
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    /// The packed panel for `(outer depth block, inner block)`.
    fn panel(&self, outer: usize, inner: usize) -> &[f32] {
        let i = outer * self.inner_blocks + inner;
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// `C += self · B` with `self` packed as the `m x k` left operand and
    /// `b` the row-major `k x n` right operand.
    ///
    /// # Panics
    ///
    /// Panics if `self` was not packed as a left operand, or (in debug
    /// builds) on slice-length mismatches.
    pub fn gemm_lhs(&self, n: usize, b: &[f32], c: &mut [f32], ws: &mut Workspace) {
        assert_eq!(self.side, Side::Lhs, "operand was not packed as Lhs");
        let (m, k) = (self.rows, self.cols);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        gemm_blocked(
            m,
            k,
            n,
            Lhs::Packed(self),
            Rhs::View(View {
                data: b,
                ld: n,
                layout: Layout::RowMajor,
            }),
            c,
            ws,
        );
    }

    /// `C += A · self` with `a` the row-major `m x k` left operand and
    /// `self` packed as the `k x n` right operand.
    ///
    /// # Panics
    ///
    /// Panics if `self` was not packed as a right operand, or (in debug
    /// builds) on slice-length mismatches.
    pub fn gemm_rhs(&self, m: usize, a: &[f32], c: &mut [f32], ws: &mut Workspace) {
        assert_eq!(self.side, Side::Rhs, "operand was not packed as Rhs");
        let (k, n) = (self.rows, self.cols);
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(c.len(), m * n);
        gemm_blocked(
            m,
            k,
            n,
            Lhs::View(View {
                data: a,
                ld: k,
                layout: Layout::RowMajor,
            }),
            Rhs::Packed(self),
            c,
            ws,
        );
    }
}

/// The left operand as the blocked loop consumes it.
#[derive(Clone, Copy)]
enum Lhs<'a> {
    View(View<'a>),
    Packed(&'a PackedMatrix),
}

/// The right operand as the blocked loop consumes it.
#[derive(Clone, Copy)]
enum Rhs<'a> {
    View(View<'a>),
    Packed(&'a PackedMatrix),
}

/// `C += A · B` over logical `m x k` and `k x n` operands, tiled and packed.
/// Pack scratch for non-prepacked operands comes from `ws` (returned when
/// done), so steady-state callers allocate nothing.
// tia-lint: hot-path(begin)
fn gemm_blocked(m: usize, k: usize, n: usize, a: Lhs, b: Rhs, c: &mut [f32], ws: &mut Workspace) {
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    // One dispatch per GEMM: the workspace carries the kernel mode, so every
    // micro-kernel and pack call below goes through the same backend.
    let ops = simd::backend(ws.kernel());
    // Scratch sized to the actual problem (capped at one cache block), so
    // the small GEMMs that dominate per-sample serving don't pay for the
    // full-block allocation. Prepacked operands need no scratch at all.
    let (mb, kb, nb) = (m.min(MC), k.min(KC), n.min(NC));
    let mut ap_buf = match a {
        Lhs::View(_) => Some(ws.take_spare(mb.div_ceil(MR) * MR * kb)),
        Lhs::Packed(_) => None,
    };
    let mut bp_buf = match b {
        Rhs::View(_) => Some(ws.take_spare(nb.div_ceil(NR) * NR * kb)),
        Rhs::Packed(_) => None,
    };
    for (jc_i, jc) in (0..n).step_by(NC).enumerate() {
        let nc = NC.min(n - jc);
        for (pc_i, pc) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - pc);
            let bp: &[f32] = match b {
                Rhs::View(v) => {
                    let buf = bp_buf.as_mut().expect("scratch present for B view");
                    pack_b(ops, v, pc, jc, kc, nc, buf);
                    buf
                }
                Rhs::Packed(p) => p.panel(pc_i, jc_i),
            };
            for (ic_i, ic) in (0..m).step_by(MC).enumerate() {
                let mc = MC.min(m - ic);
                let ap: &[f32] = match a {
                    Lhs::View(v) => {
                        let buf = ap_buf.as_mut().expect("scratch present for A view");
                        pack_a(ops, v, ic, pc, mc, kc, buf);
                        buf
                    }
                    Lhs::Packed(p) => p.panel(pc_i, ic_i),
                };
                for (js, jr) in (0..nc).step_by(NR).enumerate() {
                    let nr = NR.min(nc - jr);
                    let bs = &bp[js * NR * kc..(js + 1) * NR * kc];
                    for (is, ir) in (0..mc).step_by(MR).enumerate() {
                        let mr = MR.min(mc - ir);
                        let as_ = &ap[is * MR * kc..(is + 1) * MR * kc];
                        let mut acc = [[0.0f32; NR]; MR];
                        ops.micro_kernel_f32(kc, as_, bs, &mut acc);
                        for (i, acc_row) in acc.iter().enumerate().take(mr) {
                            let row = (ic + ir + i) * n + jc + jr;
                            let c_row = &mut c[row..row + nr];
                            for (cv, av) in c_row.iter_mut().zip(&acc_row[..nr]) {
                                *cv += av;
                            }
                        }
                    }
                }
            }
        }
    }
    if let Some(buf) = ap_buf {
        ws.recycle(buf);
    }
    if let Some(buf) = bp_buf {
        ws.recycle(buf);
    }
}
// tia-lint: hot-path(end)

/// `C += A * B` where `A` is `m x k`, `B` is `k x n`, `C` is `m x n`,
/// all row-major.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths disagree with the dims.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_ws(m, k, n, a, b, c, &mut Workspace::new());
}

/// [`gemm`] with pack scratch drawn from (and returned to) `ws`.
pub fn gemm_ws(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    ws: &mut Workspace,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    gemm_blocked(
        m,
        k,
        n,
        Lhs::View(View {
            data: a,
            ld: k,
            layout: Layout::RowMajor,
        }),
        Rhs::View(View {
            data: b,
            ld: n,
            layout: Layout::RowMajor,
        }),
        c,
        ws,
    );
}

/// `C += A^T * B` where `A` is `k x m`, `B` is `k x n`, `C` is `m x n`.
///
/// Used for weight gradients: `dW = dY^T * X` style products without
/// materialising transposes.
pub fn matmul_at_b(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    matmul_at_b_ws(k, m, n, a, b, c, &mut Workspace::new());
}

/// [`matmul_at_b`] with pack scratch drawn from (and returned to) `ws`.
pub fn matmul_at_b_ws(
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    ws: &mut Workspace,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    gemm_blocked(
        m,
        k,
        n,
        Lhs::View(View {
            data: a,
            ld: m,
            layout: Layout::Transposed,
        }),
        Rhs::View(View {
            data: b,
            ld: n,
            layout: Layout::RowMajor,
        }),
        c,
        ws,
    );
}

/// `C += A * B^T` where `A` is `m x k`, `B` is `n x k`, `C` is `m x n`.
///
/// Used for linear-layer forward/input-gradient products (`Y = X * W^T`
/// between row-major weight layouts) without materialising transposes.
pub fn matmul_a_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    matmul_a_bt_ws(m, k, n, a, b, c, &mut Workspace::new());
}

/// [`matmul_a_bt`] with pack scratch drawn from (and returned to) `ws`.
pub fn matmul_a_bt_ws(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    ws: &mut Workspace,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    gemm_blocked(
        m,
        k,
        n,
        Lhs::View(View {
            data: a,
            ld: k,
            layout: Layout::RowMajor,
        }),
        Rhs::View(View {
            data: b,
            ld: k,
            layout: Layout::Transposed,
        }),
        c,
        ws,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn assert_close(got: &[f32], want: &[f32], scale: f32, ctx: &str) {
        for (idx, (x, y)) in got.iter().zip(want).enumerate() {
            assert!(
                (x - y).abs() <= 1e-4 * scale.max(1.0),
                "{}: element {}: {} vs {}",
                ctx,
                idx,
                x,
                y
            );
        }
    }

    #[test]
    fn gemm_matches_naive() {
        let mut rng = SeededRng::new(1);
        let (m, k, n) = (5, 7, 3);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        let expect = naive(m, k, n, &a, &b);
        assert_close(&c, &expect, (k as f32).sqrt(), "5x7x3");
    }

    #[test]
    fn tiled_matches_naive_property_sweep() {
        // Seeded property test across shapes straddling every blocking
        // boundary: micro-tile fringes (MR/NR), cache-block edges (MC/KC/NC
        // crossings) and degenerate 1-sized dims.
        let mut rng = SeededRng::new(42);
        let mut cases: Vec<(usize, usize, usize)> = vec![
            (1, 1, 1),
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
            (MC + 3, 5, NC + 2),
            (2 * MR, 2 * KC + 7, 2 * NR),
            (1, 300, 1),
        ];
        for _ in 0..12 {
            cases.push((1 + rng.below(40), 1 + rng.below(300), 1 + rng.below(40)));
        }
        for (m, k, n) in cases {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let expect = naive(m, k, n, &a, &b);
            let scale = (k as f32).sqrt();
            let ctx = format!("{}x{}x{}", m, k, n);

            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            assert_close(&c, &expect, scale, &format!("gemm {}", ctx));

            // A^T * B with A stored k x m.
            let mut at = vec![0.0; k * m];
            for i in 0..m {
                for p in 0..k {
                    at[p * m + i] = a[i * k + p];
                }
            }
            let mut c = vec![0.0; m * n];
            matmul_at_b(k, m, n, &at, &b, &mut c);
            assert_close(&c, &expect, scale, &format!("at_b {}", ctx));

            // A * B^T with B stored n x k.
            let mut bt = vec![0.0; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            let mut c = vec![0.0; m * n];
            matmul_a_bt(m, k, n, &a, &bt, &mut c);
            assert_close(&c, &expect, scale, &format!("a_bt {}", ctx));
        }
    }

    #[test]
    fn tiled_result_is_batch_size_invariant() {
        // Row i of C must be bitwise identical whether A has 1 row or many:
        // the serving engine's batched-vs-per-sample bitwise identity
        // depends on the k-accumulation order never depending on m.
        let mut rng = SeededRng::new(7);
        let (k, n) = (KC + 13, NR + 3);
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        for m in [2usize, MR + 1, 17] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let mut c_full = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c_full);
            for i in 0..m {
                let mut c_row = vec![0.0; n];
                gemm(1, k, n, &a[i * k..(i + 1) * k], &b, &mut c_row);
                let got: Vec<u32> = c_full[i * n..(i + 1) * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let want: Vec<u32> = c_row.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "row {} of m={} not bitwise equal", i, m);
            }
        }
    }

    #[test]
    fn at_b_matches_naive() {
        let mut rng = SeededRng::new(2);
        let (k, m, n) = (4, 6, 5);
        let a: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect(); // k x m
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect(); // k x n
        let mut c = vec![0.0; m * n];
        matmul_at_b(k, m, n, &a, &b, &mut c);
        // naive: c[i,j] = sum_p a[p,i] * b[p,j]
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[p * m + i] * b[p * n + j];
                }
                assert!((c[i * n + j] - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn a_bt_matches_naive() {
        let mut rng = SeededRng::new(3);
        let (m, k, n) = (3, 8, 4);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect(); // m x k
        let b: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect(); // n x k
        let mut c = vec![0.0; m * n];
        matmul_a_bt(m, k, n, &a, &b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[j * k + p];
                }
                assert!((c[i * n + j] - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn prepacked_lhs_is_bitwise_identical_to_gemm() {
        // The prepacked path must not merely be close — the serving engine's
        // determinism contract needs the exact same accumulation, so results
        // must match bit for bit across blocking-boundary shapes.
        let mut rng = SeededRng::new(11);
        let mut ws = Workspace::new();
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (MR + 1, KC + 3, NR + 2),
            (MC + 5, 2 * KC + 1, NC + 7),
            (7, 300, 33),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let mut want = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut want);
            let packed = PackedMatrix::pack_lhs(m, k, &a);
            assert_eq!((packed.rows(), packed.cols()), (m, k));
            assert!(packed.packed_len() >= m * k);
            let mut got = vec![0.0; m * n];
            packed.gemm_lhs(n, &b, &mut got, &mut ws);
            let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, wb, "prepacked lhs diverged at {}x{}x{}", m, k, n);
        }
    }

    #[test]
    fn prepacked_rhs_is_bitwise_identical_to_a_bt() {
        let mut rng = SeededRng::new(12);
        let mut ws = Workspace::new();
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (MR + 2, KC + 9, NR + 5),
            (17, 2 * KC + 5, NC + 3),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            // Weight layout: n x k row-major, consumed as B = W^T.
            let w: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect();
            let mut want = vec![0.0; m * n];
            matmul_a_bt(m, k, n, &a, &w, &mut want);
            let packed = PackedMatrix::pack_rhs_transposed(n, k, &w);
            assert_eq!((packed.rows(), packed.cols()), (k, n));
            let mut got = vec![0.0; m * n];
            packed.gemm_rhs(m, &a, &mut got, &mut ws);
            let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, wb, "prepacked rhs diverged at {}x{}x{}", m, k, n);
        }
    }

    #[test]
    fn prepacked_plain_rhs_matches_gemm() {
        let mut rng = SeededRng::new(13);
        let mut ws = Workspace::new();
        let (m, k, n) = (9, KC + 2, NR * 3 + 1);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut want = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut want);
        let packed = PackedMatrix::pack_rhs(k, n, &b);
        let mut got = vec![0.0; m * n];
        packed.gemm_rhs(m, &a, &mut got, &mut ws);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn workspace_reuse_is_bitwise_stable() {
        // Re-running the same product through a warm workspace (dirty
        // recycled scratch) must reproduce the cold result exactly.
        let mut rng = SeededRng::new(14);
        let (m, k, n) = (MR + 3, KC + 17, NR * 2 + 3);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut cold = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut cold);
        let mut ws = Workspace::new();
        for round in 0..3 {
            let mut c = vec![0.0; m * n];
            gemm_ws(m, k, n, &a, &b, &mut c, &mut ws);
            assert_eq!(
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                cold.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "warm workspace diverged on round {}",
                round
            );
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 0.0, 0.0, 2.0];
        let mut c = vec![1.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![5.0; 0];
        gemm(0, 3, 0, &[], &[0.0; 0], &mut c);
        let mut c = vec![5.0; 4];
        gemm(2, 0, 2, &[], &[], &mut c);
        assert_eq!(c, vec![5.0; 4], "k = 0 must leave C untouched");
    }
}
