//! The core dense tensor type.

use crate::buf::AlignedBuf;
use crate::rng::SeededRng;

/// Maximum tensor rank. Everything in the workspace is rank 4 or below
/// (NCHW); 8 leaves headroom without bloating the inline representation.
const MAX_RANK: usize = 8;

/// An inline, copyable shape: `MAX_RANK` dims plus a rank, with unused dims
/// zeroed so derived equality is sound. Keeping the shape out of the heap
/// means constructing, cloning or reshaping a tensor never allocates for
/// its metadata — one of the invariants the allocation-free serving hot
/// path rests on.
#[derive(Clone, Copy, PartialEq, Eq)]
struct ShapeVec {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl ShapeVec {
    /// Builds a shape from a slice.
    ///
    /// # Panics
    ///
    /// Panics if the rank exceeds [`MAX_RANK`].
    fn from_slice(shape: &[usize]) -> Self {
        assert!(
            shape.len() <= MAX_RANK,
            "tensor rank {} exceeds the supported maximum {}",
            shape.len(),
            MAX_RANK
        );
        let mut dims = [0usize; MAX_RANK];
        dims[..shape.len()].copy_from_slice(shape);
        Self {
            dims,
            rank: shape.len(),
        }
    }

    fn as_slice(&self) -> &[usize] {
        &self.dims[..self.rank]
    }
}

impl std::ops::Deref for ShapeVec {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl std::fmt::Debug for ShapeVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// A dense, row-major, `f32` n-dimensional tensor.
///
/// The representation is a flat 64-byte-aligned buffer plus a shape;
/// strides are always
/// the canonical row-major strides of the shape. This keeps every operation
/// simple and predictable — ideal for a reproduction codebase where kernels
/// must be auditable against the paper's equations.
///
/// # Example
///
/// ```
/// use tia_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: ShapeVec,
    data: AlignedBuf,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={:?}, data[..{}]={:?}{})",
            self.shape,
            preview.len(),
            preview,
            if self.data.len() > 8 { ", ..." } else { "" }
        )
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Self {
            shape: ShapeVec::from_slice(shape),
            data: AlignedBuf::zeroed(n),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        let mut data = AlignedBuf::zeroed(n);
        data.fill(value);
        Self {
            shape: ShapeVec::from_slice(shape),
            data,
        }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} != shape product {}",
            data.len(),
            n
        );
        Self {
            shape: ShapeVec::from_slice(shape),
            data: AlignedBuf::from(data),
        }
    }

    /// Creates a tensor from a flat aligned buffer and a shape — the
    /// move-in counterpart of [`Tensor::from_vec`] used by the workspace
    /// arena (no copy, alignment preserved).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_buf(data: AlignedBuf, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} != shape product {}",
            data.len(),
            n
        );
        Self {
            shape: ShapeVec::from_slice(shape),
            data,
        }
    }

    /// Creates a tensor with elements drawn from N(0, std^2).
    pub fn randn(shape: &[usize], std: f32, rng: &mut SeededRng) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.normal() * std).collect();
        Self {
            shape: ShapeVec::from_slice(shape),
            data,
        }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| lo + (hi - lo) * rng.uniform()).collect();
        Self {
            shape: ShapeVec::from_slice(shape),
            data,
        }
    }

    /// Kaiming/He normal initialisation for a weight of the given fan-in.
    pub fn kaiming(shape: &[usize], fan_in: usize, rng: &mut SeededRng) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::randn(shape, std, rng)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat data as a plain `Vec`
    /// (copies out of the aligned storage).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.to_vec()
    }

    /// Consumes the tensor, returning its aligned storage (no copy) — the
    /// recycling counterpart of [`Tensor::from_buf`].
    pub fn into_buf(self) -> AlignedBuf {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            n,
            "reshape {} -> {:?} invalid",
            self.data.len(),
            shape
        );
        Self {
            shape: ShapeVec::from_slice(shape),
            data: self.data.clone(),
        }
    }

    /// In-place reshape (no data movement).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            n,
            "reshape {} -> {:?} invalid",
            self.data.len(),
            shape
        );
        self.shape = ShapeVec::from_slice(shape);
    }

    /// Element at a 2-D index (row-major).
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Element at a 4-D index (row-major, NCHW convention).
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cs, hs, ws) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Mutable element at a 4-D index.
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cs, hs, ws) = (self.shape[1], self.shape[2], self.shape[3]);
        &mut self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Elementwise `self + other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise `self * other` (Hadamard).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise combine with a binary closure.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_with shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise map to a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scales all elements by `s` in place.
    pub fn scale(&mut self, s: f32) {
        self.map_in_place(|v| v * s);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for the empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for the empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for the empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum absolute value.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Clamps every element to `[lo, hi]` in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        self.map_in_place(|v| v.clamp(lo, hi));
    }

    /// Matrix multiplication for 2-D tensors: `self [m,k] x other [k,n]`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {} vs {}", k, k2);
        let mut out = Tensor::zeros(&[m, n]);
        crate::gemm::gemm(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// Extracts the `n`-th slice along the first axis as a tensor of one
    /// fewer dimension.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds or the tensor is 0-D.
    pub fn index_axis0(&self, n: usize) -> Tensor {
        assert!(
            !self.shape.is_empty() && n < self.shape[0],
            "index_axis0 out of bounds"
        );
        let inner: usize = self.shape[1..].iter().product();
        let data = AlignedBuf::from_slice(&self.data[n * inner..(n + 1) * inner]);
        Tensor {
            shape: ShapeVec::from_slice(&self.shape[1..]),
            data,
        }
    }

    /// Writes `src` into the `n`-th slice along the first axis.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn set_axis0(&mut self, n: usize, src: &Tensor) {
        let inner: usize = self.shape[1..].iter().product();
        assert_eq!(src.len(), inner, "set_axis0 size mismatch");
        self.data[n * inner..(n + 1) * inner].copy_from_slice(&src.data);
    }

    /// Stacks tensors of identical shape along a new first axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "stack of zero tensors");
        let inner_shape = items[0].shape;
        let mut shape = vec![items.len()];
        shape.extend_from_slice(&inner_shape);
        let mut out = Tensor::zeros(&shape);
        for (i, t) in items.iter().enumerate() {
            assert_eq!(t.shape, inner_shape, "stack shape mismatch");
            out.set_axis0(i, t);
        }
        out
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at2(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let b = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = SeededRng::new(7);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let i = Tensor::eye(4);
        let c = a.matmul(&i);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn stack_and_index() {
        let a = Tensor::full(&[2, 2], 1.0);
        let b = Tensor::full(&[2, 2], 2.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.index_axis0(0), a);
        assert_eq!(s.index_axis0(1), b);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]);
        let r = t.reshape(&[2, 6]);
        assert_eq!(r.shape(), &[2, 6]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn stats() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.abs_max(), 3.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn clamp_bounds() {
        let mut t = Tensor::from_vec(vec![-2.0, 0.5, 9.0], &[3]);
        t.clamp_in_place(-1.0, 1.0);
        assert_eq!(t.data(), &[-1.0, 0.5, 1.0]);
    }
}
