//! Portable SIMD kernel layer: one trait, runtime-dispatched backends.
//!
//! Every hot kernel in the workspace — the `MR×NR` GEMM micro-kernel and
//! its pack routines, quantized integer dot products, BN row passes and the
//! softmax/exp tails — is expressed against [`SimdOps`] and resolved at
//! runtime from a [`KernelMode`]:
//!
//! * **`scalar`** — the original portable Rust loops, unchanged. This is
//!   the *bitwise-pinned reference tier*: same seed ⇒ same logits on every
//!   platform, forever. CI and the chaos harness re-verify it each run.
//! * **`native`** — the best backend the host exposes (AVX2 on `x86_64`
//!   after `is_x86_feature_detected!`, NEON on `aarch64`, scalar
//!   otherwise). Integer kernels accumulate exactly in `i32`, so their
//!   results are **bitwise identical** to scalar on every arch. `f32`
//!   kernels fall in two tiers: the micro-kernel/BN/pack paths replay the
//!   scalar rounding sequence exactly (multiply then add per lane, no FMA,
//!   no reassociation — bitwise tier), while transcendental tails
//!   (vectorized `exp`) are only ULP-bounded against scalar (tolerance
//!   tier). The differential suite in `crates/tensor/tests` enforces both
//!   tiers per backend.
//!
//! The mode travels with the [`crate::Workspace`] each kernel already
//! receives (`EngineConfig` → `ServerConfig` → `tia-served --kernel`);
//! free-standing entry points use the process-wide [`KernelMode::global_default`],
//! which reads `TIA_KERNEL=scalar|native` once (default: `native`).
//!
//! Adding an arch = one file implementing [`SimdOps`] + one arm in
//! [`detect`]; the differential suite picks it up automatically.

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

#[cfg(target_arch = "aarch64")]
mod neon;

use std::sync::OnceLock;

/// Rows of the register-held GEMM output block (micro-panel height of `A`).
pub const MR: usize = 4;
/// Columns of the register-held GEMM output block (micro-panel width of `B`).
pub const NR: usize = 8;

/// One SIMD backend: the complete set of dispatched micro-kernels.
///
/// Implementations must follow the determinism tiers documented at the
/// module level: integer kernels and the f32 micro-kernel/BN/pack kernels
/// must be bitwise identical to [`SCALAR`]'s results; `exp_sub_sum` may
/// differ from scalar by a small ULP bound.
pub trait SimdOps: Sync {
    /// Stable identifier of the backend (`"scalar"`, `"avx2"`, `"neon"`).
    fn name(&self) -> &'static str;

    /// The register-blocked GEMM inner kernel:
    /// `acc[i][j] += Σ_p ap[p*MR + i] · bp[p*NR + j]`, accumulated in
    /// increasing-`p` order with one multiply and one add per term —
    /// the exact scalar rounding sequence (bitwise tier).
    fn micro_kernel_f32(&self, kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]);

    /// Contiguous row copy used by the GEMM pack routines' fast paths
    /// (`dst.len() == src.len()`; a copy is trivially bitwise).
    fn pack_row_f32(&self, src: &[f32], dst: &mut [f32]);

    /// Widening dot product of unsigned activation levels against signed
    /// `i8` weights (`w` bytes are two's-complement `i8`), accumulated
    /// exactly in `i32` — order-independent, hence bitwise on every arch.
    ///
    /// Callers keep `a.len() ≤ 2^16` so `Σ 255·127` cannot overflow.
    fn dot_u8i8(&self, a: &[u8], w: &[u8]) -> i32;

    /// Four [`SimdOps::dot_u8i8`] dots sharing one activation row — the
    /// quantized GEMM inner loop calls this so backends can amortize the
    /// activation widening across weight rows. Exact `i32` accumulation
    /// like the single dot, so the grouping cannot change any result bit.
    fn dot_u8i8_x4(&self, a: &[u8], w0: &[u8], w1: &[u8], w2: &[u8], w3: &[u8]) -> [i32; 4] {
        [
            self.dot_u8i8(a, w0),
            self.dot_u8i8(a, w1),
            self.dot_u8i8(a, w2),
            self.dot_u8i8(a, w3),
        ]
    }

    /// Packed sub-byte dot product: `k` unsigned activation levels
    /// (each `0..=15`) against `k` signed 4-bit weights packed two per
    /// byte (element `2i` in the low nibble of `w_packed[i]`, element
    /// `2i+1` in the high nibble; nibbles decode as `(n ^ 8) - 8`).
    /// Exact `i32` accumulation — bitwise on every arch.
    fn dot_u4i4(&self, k: usize, a: &[u8], w_packed: &[u8]) -> i32;

    /// Four [`SimdOps::dot_u4i4`] dots sharing one activation row — same
    /// amortization contract as [`SimdOps::dot_u8i8_x4`], same exactness.
    fn dot_u4i4_x4(
        &self,
        k: usize,
        a: &[u8],
        w0: &[u8],
        w1: &[u8],
        w2: &[u8],
        w3: &[u8],
    ) -> [i32; 4] {
        [
            self.dot_u4i4(k, a, w0),
            self.dot_u4i4(k, a, w1),
            self.dot_u4i4(k, a, w2),
            self.dot_u4i4(k, a, w3),
        ]
    }

    /// One batch-norm inference row: `y[j] = g·((x[j] − mean)·inv_std) + b`
    /// with exactly that operation order per element (bitwise tier).
    fn bn_row(&self, x: &[f32], y: &mut [f32], mean: f32, inv_std: f32, g: f32, b: f32);

    /// Maximum element (`NEG_INFINITY` for an empty slice). `max` is exact,
    /// so every association gives the same result on NaN-free input.
    fn max_f32(&self, x: &[f32]) -> f32;

    /// The softmax tail: `out[j] = exp(x[j] − m)`, returning `Σ out[j]`.
    /// The only tolerance-tier kernel: vectorized backends may use a
    /// polynomial `exp` and a reassociated sum, ULP-bounded against scalar.
    fn exp_sub_sum(&self, x: &[f32], m: f32, out: &mut [f32]) -> f32;
}

/// Which kernel tier a workspace dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// The pinned scalar reference: bitwise-reproducible everywhere.
    Scalar,
    /// Runtime-detected best backend for the host (falls back to scalar).
    #[default]
    Native,
}

impl KernelMode {
    /// Parses a mode name as accepted by `TIA_KERNEL` / `--kernel`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(Self::Scalar),
            "native" => Some(Self::Native),
            _ => None,
        }
    }

    /// The process-wide default mode: `TIA_KERNEL=scalar|native`, read once
    /// (default `native`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `TIA_KERNEL` value — a misspelled mode
    /// silently falling back to `native` would void the determinism
    /// contract the caller asked for, so the failure is loud and at
    /// startup.
    pub fn global_default() -> Self {
        static MODE: OnceLock<KernelMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("TIA_KERNEL") {
            Err(_) => Self::Native,
            Ok(s) => Self::parse(&s).unwrap_or_else(|| {
                // tia-lint: allow(panic-freedom, startup config error — a typo silently falling back to native would void the requested determinism tier)
                panic!("TIA_KERNEL must be \"scalar\" or \"native\", got {s:?}")
            }),
        })
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Scalar => "scalar",
            Self::Native => "native",
        })
    }
}

/// The pinned scalar reference backend.
pub static SCALAR: scalar::ScalarOps = scalar::ScalarOps;

/// Resolves a mode to its backend. `Scalar` always returns the pinned
/// reference; `Native` returns [`detect`]'s choice for this host.
pub fn backend(mode: KernelMode) -> &'static dyn SimdOps {
    match mode {
        KernelMode::Scalar => &SCALAR,
        KernelMode::Native => detect(),
    }
}

/// Runtime-detects the best backend for this host (done once, cached).
pub fn detect() -> &'static dyn SimdOps {
    static FOUND: OnceLock<&'static dyn SimdOps> = OnceLock::new();
    *FOUND.get_or_init(native)
}

/// The name of the backend `Native` dispatches to on this host — logged by
/// `tia-served` at startup and recorded in bench metadata.
pub fn detect_name() -> &'static str {
    detect().name()
}

#[cfg(target_arch = "x86_64")]
fn native() -> &'static dyn SimdOps {
    if is_x86_feature_detected!("avx2") {
        static AVX2: avx2::Avx2Ops = avx2::Avx2Ops;
        &AVX2
    } else {
        &SCALAR
    }
}

#[cfg(target_arch = "aarch64")]
fn native() -> &'static dyn SimdOps {
    // NEON is baseline on aarch64 — no runtime probe needed.
    static NEON: neon::NeonOps = neon::NeonOps;
    &NEON
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn native() -> &'static dyn SimdOps {
    &SCALAR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_mode_always_resolves_to_scalar() {
        assert_eq!(backend(KernelMode::Scalar).name(), "scalar");
    }

    #[test]
    fn native_detection_is_stable() {
        assert_eq!(detect_name(), detect_name());
        assert_eq!(backend(KernelMode::Native).name(), detect_name());
    }

    #[test]
    fn mode_parse_roundtrip() {
        assert_eq!(KernelMode::parse("scalar"), Some(KernelMode::Scalar));
        assert_eq!(KernelMode::parse("native"), Some(KernelMode::Native));
        assert_eq!(KernelMode::parse("avx2"), None);
        assert_eq!(KernelMode::Scalar.to_string(), "scalar");
        assert_eq!(KernelMode::Native.to_string(), "native");
    }
}
