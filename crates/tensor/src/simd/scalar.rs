//! The pinned scalar reference backend.
//!
//! These are the workspace's original portable loops, moved verbatim behind
//! [`SimdOps`]: every dispatched backend is verified against this one (see
//! the determinism tiers in the module docs), and `TIA_KERNEL=scalar`
//! routes all serving through it unchanged.

use super::{SimdOps, MR, NR};

/// The always-available, bitwise-pinned reference implementation.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarOps;

impl SimdOps for ScalarOps {
    fn name(&self) -> &'static str {
        "scalar"
    }

    // tia-lint: hot-path(begin)
    fn micro_kernel_f32(&self, kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        for p in 0..kc {
            let arow = &ap[p * MR..p * MR + MR];
            let brow = &bp[p * NR..p * NR + NR];
            for i in 0..MR {
                let ai = arow[i];
                for j in 0..NR {
                    acc[i][j] += ai * brow[j];
                }
            }
        }
    }

    fn pack_row_f32(&self, src: &[f32], dst: &mut [f32]) {
        dst.copy_from_slice(src);
    }

    fn dot_u8i8(&self, a: &[u8], w: &[u8]) -> i32 {
        debug_assert_eq!(a.len(), w.len());
        let mut acc = 0i32;
        for (&av, &wv) in a.iter().zip(w) {
            acc += av as i32 * (wv as i8) as i32;
        }
        acc
    }

    fn dot_u4i4(&self, k: usize, a: &[u8], w_packed: &[u8]) -> i32 {
        debug_assert!(a.len() >= k && w_packed.len() >= k.div_ceil(2));
        let mut acc = 0i32;
        for (i, &av) in a.iter().enumerate().take(k) {
            let nib = if i % 2 == 0 {
                w_packed[i / 2] & 0x0F
            } else {
                w_packed[i / 2] >> 4
            };
            // Sign-extend the 4-bit two's-complement nibble to i32.
            let wv = (nib ^ 8) as i32 - 8;
            acc += av as i32 * wv;
        }
        acc
    }

    fn bn_row(&self, x: &[f32], y: &mut [f32], mean: f32, inv_std: f32, g: f32, b: f32) {
        for (o, &xv) in y.iter_mut().zip(x) {
            *o = g * ((xv - mean) * inv_std) + b;
        }
    }

    fn max_f32(&self, x: &[f32]) -> f32 {
        x.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    fn exp_sub_sum(&self, x: &[f32], m: f32, out: &mut [f32]) -> f32 {
        let mut denom = 0.0;
        for (o, &v) in out.iter_mut().zip(x) {
            let e = (v - m).exp();
            *o = e;
            denom += e;
        }
        denom
    }
    // tia-lint: hot-path(end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_u8i8_matches_manual() {
        let a = [1u8, 2, 255, 0, 7];
        let w = [1i8, -1, -128, 5, 3].map(|v| v as u8);
        assert_eq!(ScalarOps.dot_u8i8(&a, &w), 1 - 2 + 255 * (-128) + 21);
    }

    #[test]
    fn dot_u4i4_decodes_nibbles() {
        // Elements: w = [3, -8, 7, -1, 5] packed two per byte, low first.
        let packed = [(3u8) | (8 << 4), (7u8) | (15 << 4), 5u8];
        let a = [1u8, 1, 2, 3, 10];
        assert_eq!(ScalarOps.dot_u4i4(5, &a, &packed), 3 - 8 + 14 - 3 + 50);
    }

    #[test]
    fn zero_nibble_decodes_to_zero_weight() {
        // The padding nibble of an odd-k row must contribute nothing.
        let packed = [2u8]; // elements [2, 0]
        assert_eq!(ScalarOps.dot_u4i4(2, &[5, 9], &packed), 10);
    }

    #[test]
    fn bn_row_matches_expression() {
        let x = [1.0f32, -2.0, 0.5];
        let mut y = [0.0f32; 3];
        ScalarOps.bn_row(&x, &mut y, 0.25, 2.0, 1.5, -0.5);
        for (o, xv) in y.iter().zip(x) {
            assert_eq!(*o, 1.5 * ((xv - 0.25) * 2.0) + -0.5);
        }
    }

    #[test]
    fn exp_sub_sum_is_softmax_numerator() {
        let x = [0.0f32, 1.0, -1.0];
        let mut out = [0.0f32; 3];
        let denom = ScalarOps.exp_sub_sum(&x, 1.0, &mut out);
        assert_eq!(out[1], 1.0);
        assert!((denom - (out[0] + out[1] + out[2])).abs() < 1e-6);
        assert_eq!(ScalarOps.max_f32(&x), 1.0);
        assert_eq!(ScalarOps.max_f32(&[]), f32::NEG_INFINITY);
    }
}
