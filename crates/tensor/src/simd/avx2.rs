//! AVX2 backend (`x86_64`, selected after `is_x86_feature_detected!`).
//!
//! Determinism tiers (see the module docs):
//!
//! * `micro_kernel_f32` vectorizes across the `NR` output columns — one
//!   256-bit lane vector per accumulator row — and performs exactly one
//!   `vmulps` + one `vaddps` per `(i, p)` term, in increasing-`p` order.
//!   Each output element therefore sees the *identical* rounding sequence
//!   as the scalar kernel: bitwise tier. FMA is deliberately not used
//!   (fused rounding would diverge from the reference).
//! * `bn_row` replays the scalar expression's operation order per lane:
//!   bitwise tier. `pack_row_f32` is a copy: bitwise trivially.
//! * `dot_u8i8` / `dot_u4i4` widen to `i16` pairs (`vpmovzxbw`/`vpmovsxbw`)
//!   and accumulate via `vpmaddwd` into `i32` lanes — exact integer
//!   arithmetic, so any summation order gives the same value: bitwise
//!   tier. (`vpmaddubsw` is avoided: it saturates at `255·127·2`.)
//! * `exp_sub_sum` uses a Cephes-style polynomial `exp` and a reassociated
//!   lane sum: tolerance tier, ULP-bounded against scalar by the
//!   differential suite.

#![allow(unsafe_code)]

use super::{SimdOps, MR, NR};
use std::arch::x86_64::*;

/// The AVX2 implementation. Only constructed by `super::detect` after a
/// successful runtime feature probe, so every `unsafe` call below has its
/// target features present.
#[derive(Debug, Default, Clone, Copy)]
pub struct Avx2Ops;

// safety: callers guarantee AVX2 is available (enforced by construction:
// `detect` only hands out `Avx2Ops` after `is_x86_feature_detected!`).
#[target_feature(enable = "avx2")]
unsafe fn micro_kernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut c0 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c1 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c2 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c3 = _mm256_loadu_ps(acc[3].as_ptr());
    let (ap, bp) = (ap.as_ptr(), bp.as_ptr());
    for p in 0..kc {
        let b = _mm256_loadu_ps(bp.add(p * NR));
        let a = ap.add(p * MR);
        c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(*a), b));
        c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(*a.add(1)), b));
        c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(*a.add(2)), b));
        c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(*a.add(3)), b));
    }
    _mm256_storeu_ps(acc[0].as_mut_ptr(), c0);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c1);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c2);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c3);
}

// safety: same AVX2-availability contract as `micro_kernel`.
#[target_feature(enable = "avx2")]
unsafe fn pack_row(src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    let n = src.len();
    let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        _mm256_storeu_ps(dp.add(i), _mm256_loadu_ps(sp.add(i)));
        i += 8;
    }
    while i < n {
        *dp.add(i) = *sp.add(i);
        i += 1;
    }
}

// safety: same AVX2-availability contract as `micro_kernel`.
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(v: __m256i) -> i32 {
    let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
    let s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
    let s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
    _mm_cvtsi128_si32(s)
}

// safety: same AVX2-availability contract as `micro_kernel`.
#[target_feature(enable = "avx2")]
unsafe fn dot_u8i8(a: &[u8], w: &[u8]) -> i32 {
    debug_assert_eq!(a.len(), w.len());
    let k = a.len();
    let (ap, wp) = (a.as_ptr(), w.as_ptr());
    let mut acc = _mm256_setzero_si256();
    let mut p = 0;
    while p + 16 <= k {
        let av = _mm_loadu_si128(ap.add(p).cast());
        let wv = _mm_loadu_si128(wp.add(p).cast());
        let a16 = _mm256_cvtepu8_epi16(av);
        let w16 = _mm256_cvtepi8_epi16(wv);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, w16));
        p += 16;
    }
    let mut sum = hsum_epi32(acc);
    while p < k {
        sum += *ap.add(p) as i32 * (*wp.add(p) as i8) as i32;
        p += 1;
    }
    sum
}

// safety: same AVX2-availability contract as `micro_kernel`.
#[target_feature(enable = "avx2")]
unsafe fn dot_u8i8_x4(a: &[u8], w0: &[u8], w1: &[u8], w2: &[u8], w3: &[u8]) -> [i32; 4] {
    let k = a.len();
    debug_assert!(w0.len() == k && w1.len() == k && w2.len() == k && w3.len() == k);
    let ap = a.as_ptr();
    let wp = [w0.as_ptr(), w1.as_ptr(), w2.as_ptr(), w3.as_ptr()];
    let mut acc = [_mm256_setzero_si256(); 4];
    let mut p = 0;
    while p + 16 <= k {
        // One activation widening feeds all four weight rows: 5 shuffle-port
        // ops per 64 MACs instead of the single dot's 8.
        let a16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(ap.add(p).cast()));
        for l in 0..4 {
            let w16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(wp[l].add(p).cast()));
            acc[l] = _mm256_add_epi32(acc[l], _mm256_madd_epi16(a16, w16));
        }
        p += 16;
    }
    let mut sums = [
        hsum_epi32(acc[0]),
        hsum_epi32(acc[1]),
        hsum_epi32(acc[2]),
        hsum_epi32(acc[3]),
    ];
    while p < k {
        let av = *ap.add(p) as i32;
        for l in 0..4 {
            sums[l] += av * (*wp[l].add(p) as i8) as i32;
        }
        p += 1;
    }
    sums
}

// The sub-byte dots exploit exactness: an `i32` sum is order-independent,
// so instead of decoding nibbles back into element order (two interleave
// shuffles per 32 elements), they split the dot into an even-element and
// an odd-element half. `and 0x00FF` / `srli 8` deinterleave the
// activations with no shuffle at all, and a packed weight byte's lo/hi
// nibbles *are* the matching even/odd elements by layout.
//
// safety: same AVX2-availability contract as `micro_kernel`.
#[target_feature(enable = "avx2")]
unsafe fn dot_u4i4(k: usize, a: &[u8], w_packed: &[u8]) -> i32 {
    debug_assert!(a.len() >= k && w_packed.len() >= k.div_ceil(2));
    let (ap, wp) = (a.as_ptr(), w_packed.as_ptr());
    let byte_mask = _mm256_set1_epi16(0x00FF);
    let nib_mask = _mm256_set1_epi16(0x000F);
    let sign = _mm256_set1_epi16(8);
    let mut acc = _mm256_setzero_si256();
    let mut p = 0;
    // 16 packed bytes = 32 weight nibbles per step.
    while p + 32 <= k {
        let av = _mm256_loadu_si256(ap.add(p).cast());
        let a_even = _mm256_and_si256(av, byte_mask); // lanes a[p+2j]
        let a_odd = _mm256_srli_epi16(av, 8); // lanes a[p+2j+1]
                                              // Lane j of the widened packed bytes holds elements p+2j (lo
                                              // nibble) and p+2j+1 (hi); sign-decode is (n ^ 8) - 8 per lane.
        let wv = _mm256_cvtepu8_epi16(_mm_loadu_si128(wp.add(p / 2).cast()));
        let w_even = _mm256_sub_epi16(_mm256_xor_si256(_mm256_and_si256(wv, nib_mask), sign), sign);
        let w_odd = _mm256_sub_epi16(_mm256_xor_si256(_mm256_srli_epi16(wv, 4), sign), sign);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_even, w_even));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_odd, w_odd));
        p += 32;
    }
    // 8 packed bytes = 16 nibbles, same split at 128-bit width.
    if p + 16 <= k {
        let av = _mm_loadu_si128(ap.add(p).cast());
        let a_even = _mm_and_si128(av, _mm256_castsi256_si128(byte_mask));
        let a_odd = _mm_srli_epi16(av, 8);
        let wv = _mm_cvtepu8_epi16(_mm_loadl_epi64(wp.add(p / 2).cast()));
        let nib128 = _mm256_castsi256_si128(nib_mask);
        let sign128 = _mm256_castsi256_si128(sign);
        let w_even = _mm_sub_epi16(_mm_xor_si128(_mm_and_si128(wv, nib128), sign128), sign128);
        let w_odd = _mm_sub_epi16(_mm_xor_si128(_mm_srli_epi16(wv, 4), sign128), sign128);
        let lo = _mm_add_epi32(_mm_madd_epi16(a_even, w_even), _mm_madd_epi16(a_odd, w_odd));
        acc = _mm256_add_epi32(acc, _mm256_castsi128_si256(lo));
        p += 16;
    }
    let mut sum = hsum_epi32(acc);
    while p < k {
        let byte = *wp.add(p / 2);
        let nib = if p % 2 == 0 { byte & 0x0F } else { byte >> 4 };
        sum += *ap.add(p) as i32 * ((nib ^ 8) as i32 - 8);
        p += 1;
    }
    sum
}

// safety: same AVX2-availability contract as `micro_kernel`.
#[target_feature(enable = "avx2")]
unsafe fn dot_u4i4_x4(k: usize, a: &[u8], w0: &[u8], w1: &[u8], w2: &[u8], w3: &[u8]) -> [i32; 4] {
    let packed_len = k.div_ceil(2);
    debug_assert!(
        a.len() >= k
            && w0.len() >= packed_len
            && w1.len() >= packed_len
            && w2.len() >= packed_len
            && w3.len() >= packed_len
    );
    let ap = a.as_ptr();
    let wp = [w0.as_ptr(), w1.as_ptr(), w2.as_ptr(), w3.as_ptr()];
    let byte_mask = _mm256_set1_epi16(0x00FF);
    let nib_mask = _mm256_set1_epi16(0x000F);
    let sign = _mm256_set1_epi16(8);
    let mut acc = [_mm256_setzero_si256(); 4];
    let mut p = 0;
    while p + 32 <= k {
        // One activation deinterleave feeds all four weight rows.
        let av = _mm256_loadu_si256(ap.add(p).cast());
        let a_even = _mm256_and_si256(av, byte_mask);
        let a_odd = _mm256_srli_epi16(av, 8);
        for l in 0..4 {
            let wv = _mm256_cvtepu8_epi16(_mm_loadu_si128(wp[l].add(p / 2).cast()));
            let w_even =
                _mm256_sub_epi16(_mm256_xor_si256(_mm256_and_si256(wv, nib_mask), sign), sign);
            let w_odd = _mm256_sub_epi16(_mm256_xor_si256(_mm256_srli_epi16(wv, 4), sign), sign);
            acc[l] = _mm256_add_epi32(acc[l], _mm256_madd_epi16(a_even, w_even));
            acc[l] = _mm256_add_epi32(acc[l], _mm256_madd_epi16(a_odd, w_odd));
        }
        p += 32;
    }
    let mut sums = [
        hsum_epi32(acc[0]),
        hsum_epi32(acc[1]),
        hsum_epi32(acc[2]),
        hsum_epi32(acc[3]),
    ];
    while p < k {
        let av = *ap.add(p) as i32;
        for l in 0..4 {
            let byte = *wp[l].add(p / 2);
            let nib = if p % 2 == 0 { byte & 0x0F } else { byte >> 4 };
            sums[l] += av * ((nib ^ 8) as i32 - 8);
        }
        p += 1;
    }
    sums
}

// safety: same AVX2-availability contract as `micro_kernel`.
#[target_feature(enable = "avx2")]
unsafe fn bn_row(x: &[f32], y: &mut [f32], mean: f32, inv_std: f32, g: f32, b: f32) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let (vm, vi, vg, vb) = (
        _mm256_set1_ps(mean),
        _mm256_set1_ps(inv_std),
        _mm256_set1_ps(g),
        _mm256_set1_ps(b),
    );
    let mut i = 0;
    while i + 8 <= n {
        let xv = _mm256_loadu_ps(xp.add(i));
        // Same per-element op order as scalar: sub, mul, mul, add.
        let t = _mm256_mul_ps(_mm256_sub_ps(xv, vm), vi);
        _mm256_storeu_ps(yp.add(i), _mm256_add_ps(_mm256_mul_ps(vg, t), vb));
        i += 8;
    }
    while i < n {
        let xv = *xp.add(i);
        *yp.add(i) = g * ((xv - mean) * inv_std) + b;
        i += 1;
    }
}

// safety: same AVX2-availability contract as `micro_kernel`.
#[target_feature(enable = "avx2")]
unsafe fn max_f32(x: &[f32]) -> f32 {
    let n = x.len();
    let xp = x.as_ptr();
    let mut m = f32::NEG_INFINITY;
    let mut i = 0;
    if n >= 8 {
        let mut mv = _mm256_loadu_ps(xp);
        i = 8;
        while i + 8 <= n {
            mv = _mm256_max_ps(mv, _mm256_loadu_ps(xp.add(i)));
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), mv);
        for v in lanes {
            m = m.max(v);
        }
    }
    while i < n {
        m = m.max(*xp.add(i));
        i += 1;
    }
    m
}

// Cephes-style polynomial expf constants (as in the classic avx_mathfun).
const EXP_HI: f32 = 88.376_26;
const EXP_LO: f32 = -88.376_26;
const LOG2EF: f32 = std::f32::consts::LOG2_E;
const C1: f32 = 0.693_359_4;
const C2: f32 = -2.121_944_4e-4;
const P0: f32 = 1.987_569_1e-4;
const P1: f32 = 1.398_199_9e-3;
const P2: f32 = 8.333_452e-3;
const P3: f32 = 4.166_579_6e-2;
const P4: f32 = 1.666_666_5e-1;
const P5: f32 = 5.0e-1;

// safety: same AVX2-availability contract as `micro_kernel`.
#[target_feature(enable = "avx2")]
unsafe fn exp_ps(x: __m256) -> __m256 {
    let one = _mm256_set1_ps(1.0);
    let x = _mm256_min_ps(
        _mm256_max_ps(x, _mm256_set1_ps(EXP_LO)),
        _mm256_set1_ps(EXP_HI),
    );
    // n = floor(x * log2(e) + 0.5); r = x - n*ln2 (split high/low).
    let fx = _mm256_floor_ps(_mm256_add_ps(
        _mm256_mul_ps(x, _mm256_set1_ps(LOG2EF)),
        _mm256_set1_ps(0.5),
    ));
    let r = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(C1)));
    let r = _mm256_sub_ps(r, _mm256_mul_ps(fx, _mm256_set1_ps(C2)));
    // Degree-5 polynomial for exp(r) on r ∈ [-ln2/2, ln2/2].
    let mut y = _mm256_set1_ps(P0);
    y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P1));
    y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P2));
    y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P3));
    y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P4));
    y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P5));
    let r2 = _mm256_mul_ps(r, r);
    y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(y, r2), r), one);
    // Scale by 2^n via exponent-field arithmetic.
    let n = _mm256_add_epi32(_mm256_cvttps_epi32(fx), _mm256_set1_epi32(127));
    let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32(n, 23));
    _mm256_mul_ps(y, pow2n)
}

// safety: same AVX2-availability contract as `micro_kernel`.
#[target_feature(enable = "avx2")]
unsafe fn exp_sub_sum(x: &[f32], m: f32, out: &mut [f32]) -> f32 {
    debug_assert_eq!(x.len(), out.len());
    let n = x.len();
    let (xp, op) = (x.as_ptr(), out.as_mut_ptr());
    let vm = _mm256_set1_ps(m);
    let mut vsum = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let e = exp_ps(_mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), vm));
        _mm256_storeu_ps(op.add(i), e);
        vsum = _mm256_add_ps(vsum, e);
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vsum);
    let mut sum = lanes.iter().sum::<f32>();
    while i < n {
        let e = (*xp.add(i) - m).exp();
        *op.add(i) = e;
        sum += e;
        i += 1;
    }
    sum
}

impl SimdOps for Avx2Ops {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn micro_kernel_f32(&self, kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        // safety: Avx2Ops exists only on hosts where the AVX2 probe passed.
        unsafe { micro_kernel(kc, ap, bp, acc) }
    }

    fn pack_row_f32(&self, src: &[f32], dst: &mut [f32]) {
        // safety: Avx2Ops exists only on hosts where the AVX2 probe passed.
        unsafe { pack_row(src, dst) }
    }

    fn dot_u8i8(&self, a: &[u8], w: &[u8]) -> i32 {
        // safety: Avx2Ops exists only on hosts where the AVX2 probe passed.
        unsafe { dot_u8i8(a, w) }
    }

    fn dot_u8i8_x4(&self, a: &[u8], w0: &[u8], w1: &[u8], w2: &[u8], w3: &[u8]) -> [i32; 4] {
        // safety: Avx2Ops exists only on hosts where the AVX2 probe passed.
        unsafe { dot_u8i8_x4(a, w0, w1, w2, w3) }
    }

    fn dot_u4i4(&self, k: usize, a: &[u8], w_packed: &[u8]) -> i32 {
        // safety: Avx2Ops exists only on hosts where the AVX2 probe passed.
        unsafe { dot_u4i4(k, a, w_packed) }
    }

    fn dot_u4i4_x4(
        &self,
        k: usize,
        a: &[u8],
        w0: &[u8],
        w1: &[u8],
        w2: &[u8],
        w3: &[u8],
    ) -> [i32; 4] {
        // safety: Avx2Ops exists only on hosts where the AVX2 probe passed.
        unsafe { dot_u4i4_x4(k, a, w0, w1, w2, w3) }
    }

    fn bn_row(&self, x: &[f32], y: &mut [f32], mean: f32, inv_std: f32, g: f32, b: f32) {
        // safety: Avx2Ops exists only on hosts where the AVX2 probe passed.
        unsafe { bn_row(x, y, mean, inv_std, g, b) }
    }

    fn max_f32(&self, x: &[f32]) -> f32 {
        // safety: Avx2Ops exists only on hosts where the AVX2 probe passed.
        unsafe { max_f32(x) }
    }

    fn exp_sub_sum(&self, x: &[f32], m: f32, out: &mut [f32]) -> f32 {
        // safety: Avx2Ops exists only on hosts where the AVX2 probe passed.
        unsafe { exp_sub_sum(x, m, out) }
    }
}
