//! NEON backend (`aarch64`, where NEON is baseline — no runtime probe).
//!
//! The f32 micro-kernel is vectorized as two 4-lane vectors per accumulator
//! row with one multiply and one add per term in increasing-`p` order — the
//! exact scalar rounding sequence, so it sits in the bitwise tier (no FMA:
//! `vmlaq_f32` may fuse on some cores, so `vmulq`/`vaddq` are used
//! explicitly). The integer dot products and the transcendental tail
//! delegate to the scalar reference: integers are exact anyway, and keeping
//! `exp` scalar keeps this backend bitwise across the board.

#![allow(unsafe_code)]

use super::{scalar::ScalarOps, SimdOps, MR, NR};
use std::arch::aarch64::*;

/// The NEON implementation, selected for every `aarch64` host.
#[derive(Debug, Default, Clone, Copy)]
pub struct NeonOps;

// safety: NEON is part of the aarch64 baseline ISA; this module only
// compiles for `target_arch = "aarch64"`, so the intrinsics are always
// available.
#[target_feature(enable = "neon")]
unsafe fn micro_kernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut c: [[float32x4_t; 2]; MR] = [[vdupq_n_f32(0.0); 2]; MR];
    for (i, row) in acc.iter().enumerate() {
        c[i][0] = vld1q_f32(row.as_ptr());
        c[i][1] = vld1q_f32(row.as_ptr().add(4));
    }
    let (app, bpp) = (ap.as_ptr(), bp.as_ptr());
    for p in 0..kc {
        let b0 = vld1q_f32(bpp.add(p * NR));
        let b1 = vld1q_f32(bpp.add(p * NR + 4));
        for (i, ci) in c.iter_mut().enumerate() {
            let ai = vdupq_n_f32(*app.add(p * MR + i));
            ci[0] = vaddq_f32(ci[0], vmulq_f32(ai, b0));
            ci[1] = vaddq_f32(ci[1], vmulq_f32(ai, b1));
        }
    }
    for (i, row) in acc.iter_mut().enumerate() {
        vst1q_f32(row.as_mut_ptr(), c[i][0]);
        vst1q_f32(row.as_mut_ptr().add(4), c[i][1]);
    }
}

impl SimdOps for NeonOps {
    fn name(&self) -> &'static str {
        "neon"
    }

    fn micro_kernel_f32(&self, kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        // safety: NEON is baseline on aarch64 (the only arch this compiles for).
        unsafe { micro_kernel(kc, ap, bp, acc) }
    }

    fn pack_row_f32(&self, src: &[f32], dst: &mut [f32]) {
        ScalarOps.pack_row_f32(src, dst);
    }

    fn dot_u8i8(&self, a: &[u8], w: &[u8]) -> i32 {
        ScalarOps.dot_u8i8(a, w)
    }

    fn dot_u4i4(&self, k: usize, a: &[u8], w_packed: &[u8]) -> i32 {
        ScalarOps.dot_u4i4(k, a, w_packed)
    }

    fn bn_row(&self, x: &[f32], y: &mut [f32], mean: f32, inv_std: f32, g: f32, b: f32) {
        ScalarOps.bn_row(x, y, mean, inv_std, g, b);
    }

    fn max_f32(&self, x: &[f32]) -> f32 {
        ScalarOps.max_f32(x)
    }

    fn exp_sub_sum(&self, x: &[f32], m: f32, out: &mut [f32]) -> f32 {
        ScalarOps.exp_sub_sum(x, m, out)
    }
}
