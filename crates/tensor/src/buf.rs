//! 64-byte-aligned growable buffers backing every pooled/tensor allocation.
//!
//! SIMD backends (see [`crate::simd`]) load panel data with full cachelines;
//! guaranteeing 64-byte base alignment for all tensor, packed-panel and
//! workspace storage keeps those loads split-free and makes the alignment
//! contract checkable (the workspace asserts it in tests) instead of UB.
//!
//! The implementation stores data as a `Vec` of 64-byte `#[repr(align(64))]`
//! chunks and exposes an element-typed slice view over the prefix. All
//! element access goes through safe slices; the only `unsafe` is the
//! chunk-to-element reinterpret, which is layout-guaranteed by `repr(C)`.

use std::fmt;
use std::ops::{Deref, DerefMut};

macro_rules! aligned_buf {
    ($(#[$doc:meta])* $name:ident, $chunk:ident, $elem:ty, $lanes:expr) => {
        #[derive(Clone, Copy)]
        #[repr(C, align(64))]
        struct $chunk([$elem; $lanes]);

        impl $chunk {
            const ZERO: Self = Self([0 as $elem; $lanes]);
        }

        $(#[$doc])*
        #[derive(Clone, Default)]
        pub struct $name {
            chunks: Vec<$chunk>,
            len: usize,
        }

        impl $name {
            /// Number of elements per 64-byte chunk.
            const LANES: usize = $lanes;

            /// Creates an empty buffer.
            pub fn new() -> Self {
                Self { chunks: Vec::new(), len: 0 }
            }

            /// Creates an empty buffer with room for at least `cap` elements.
            pub fn with_capacity(cap: usize) -> Self {
                Self {
                    chunks: Vec::with_capacity(cap.div_ceil(Self::LANES)),
                    len: 0,
                }
            }

            /// Creates a zero-filled buffer of `len` elements.
            pub fn zeroed(len: usize) -> Self {
                Self {
                    chunks: vec![$chunk::ZERO; len.div_ceil(Self::LANES)],
                    len,
                }
            }

            /// Creates a buffer holding a copy of `src`.
            pub fn from_slice(src: &[$elem]) -> Self {
                let mut b = Self::zeroed(src.len());
                b.copy_from_slice(src);
                b
            }

            /// Number of live elements.
            #[allow(clippy::len_without_is_empty)]
            pub fn len(&self) -> usize {
                self.len
            }

            /// `true` when the buffer holds no elements.
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// Element capacity before the chunk vector must reallocate.
            pub fn capacity(&self) -> usize {
                self.chunks.capacity() * Self::LANES
            }

            /// Grows the live region to `n` elements without initialising
            /// the new tail beyond chunk-granular zeroing of fresh chunks.
            /// Callers overwrite the exposed tail before reading it.
            fn grow_to(&mut self, n: usize) {
                let need = n.div_ceil(Self::LANES);
                if need > self.chunks.len() {
                    self.chunks.resize(need, $chunk::ZERO);
                }
                self.len = n;
            }

            /// Appends one element.
            pub fn push(&mut self, v: $elem) {
                let i = self.len;
                self.grow_to(i + 1);
                self[i] = v;
            }

            /// Appends a copy of `src`.
            pub fn extend_from_slice(&mut self, src: &[$elem]) {
                let i = self.len;
                self.grow_to(i + src.len());
                self[i..].copy_from_slice(src);
            }

            /// Resizes to `n` elements, filling any new tail with `v`.
            pub fn resize(&mut self, n: usize, v: $elem) {
                let old = self.len;
                if n > old {
                    self.grow_to(n);
                    self[old..].fill(v);
                } else {
                    self.truncate(n);
                }
            }

            /// Shortens to `n` elements (no-op if already shorter).
            pub fn truncate(&mut self, n: usize) {
                if n < self.len {
                    self.len = n;
                    self.chunks.truncate(n.div_ceil(Self::LANES));
                }
            }

            /// Empties the buffer, keeping its allocation.
            pub fn clear(&mut self) {
                self.len = 0;
                self.chunks.clear();
            }

            /// The live elements as a slice.
            pub fn as_slice(&self) -> &[$elem] {
                self
            }

            /// The live elements as a mutable slice.
            pub fn as_mut_slice(&mut self) -> &mut [$elem] {
                self
            }

            /// Copies the live elements into a plain `Vec`.
            pub fn to_vec(&self) -> Vec<$elem> {
                self.as_slice().to_vec()
            }
        }

        impl Deref for $name {
            type Target = [$elem];

            fn deref(&self) -> &[$elem] {
                // safety: `repr(C)` chunks are exactly `LANES` contiguous
                // elements with no padding, the chunk vector owns
                // `chunks.len() * LANES >= len` initialised elements, and
                // the pointer is valid for the lifetime of `&self`.
                unsafe { std::slice::from_raw_parts(self.chunks.as_ptr().cast(), self.len) }
            }
        }

        impl DerefMut for $name {
            fn deref_mut(&mut self) -> &mut [$elem] {
                // safety: same layout argument as `deref`; `&mut self`
                // guarantees exclusive access to the chunk storage.
                unsafe {
                    std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast(), self.len)
                }
            }
        }

        impl From<Vec<$elem>> for $name {
            fn from(v: Vec<$elem>) -> Self {
                Self::from_slice(&v)
            }
        }

        impl From<&[$elem]> for $name {
            fn from(v: &[$elem]) -> Self {
                Self::from_slice(v)
            }
        }

        impl<'a> IntoIterator for &'a $name {
            type Item = &'a $elem;
            type IntoIter = std::slice::Iter<'a, $elem>;

            fn into_iter(self) -> Self::IntoIter {
                self.as_slice().iter()
            }
        }

        impl<'a> IntoIterator for &'a mut $name {
            type Item = &'a mut $elem;
            type IntoIter = std::slice::IterMut<'a, $elem>;

            fn into_iter(self) -> Self::IntoIter {
                self.as_mut_slice().iter_mut()
            }
        }

        impl FromIterator<$elem> for $name {
            fn from_iter<I: IntoIterator<Item = $elem>>(iter: I) -> Self {
                let iter = iter.into_iter();
                let mut b = Self::with_capacity(iter.size_hint().0);
                for v in iter {
                    b.push(v);
                }
                b
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.as_slice() == other.as_slice()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_list().entries(self.iter()).finish()
            }
        }
    };
}

aligned_buf!(
    /// A growable `f32` buffer whose storage is always 64-byte aligned.
    AlignedBuf,
    F32Chunk,
    f32,
    16
);

aligned_buf!(
    /// A growable `u8` buffer whose storage is always 64-byte aligned —
    /// backing store for quantized integer panels and level matrices.
    AlignedBytes,
    ByteChunk,
    u8,
    64
);

aligned_buf!(
    /// A growable `i32` buffer whose storage is always 64-byte aligned —
    /// zero-point and accumulator scratch for the integer serving path.
    AlignedInts,
    I32Chunk,
    i32,
    16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_pointer_is_64_byte_aligned() {
        for n in [1usize, 15, 16, 17, 1000] {
            let b = AlignedBuf::zeroed(n);
            assert_eq!(b.as_slice().as_ptr() as usize % 64, 0);
            let y = AlignedBytes::zeroed(n);
            assert_eq!(y.as_slice().as_ptr() as usize % 64, 0);
        }
    }

    #[test]
    fn push_extend_resize_roundtrip() {
        let mut b = AlignedBuf::new();
        assert!(b.is_empty());
        for i in 0..40 {
            b.push(i as f32);
        }
        assert_eq!(b.len(), 40);
        assert_eq!(b[17], 17.0);
        b.extend_from_slice(&[100.0, 101.0]);
        assert_eq!(b[41], 101.0);
        b.resize(5, 0.0);
        assert_eq!(b.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        b.resize(8, 9.0);
        assert_eq!(&b[5..], &[9.0, 9.0, 9.0]);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn from_and_to_vec_preserve_contents() {
        let v = vec![1.0f32, -2.5, 3.25];
        let b = AlignedBuf::from(v.clone());
        assert_eq!(b.to_vec(), v);
        let c: AlignedBuf = v.iter().copied().collect();
        assert_eq!(b, c);
        assert_eq!(format!("{:?}", AlignedBuf::from_slice(&[1.0])), "[1.0]");
    }

    #[test]
    fn truncate_then_grow_stays_consistent() {
        let mut b = AlignedBuf::from_slice(&(0..33).map(|v| v as f32).collect::<Vec<_>>());
        b.truncate(10);
        assert_eq!(b.len(), 10);
        b.resize(20, -1.0);
        assert_eq!(b[9], 9.0);
        assert!(b[10..].iter().all(|&v| v == -1.0));
    }

    #[test]
    fn byte_buffer_holds_levels() {
        let mut b = AlignedBytes::with_capacity(3);
        b.extend_from_slice(&[7, 255, 0]);
        assert_eq!(b.as_slice(), &[7, 255, 0]);
        assert!(b.capacity() >= 64);
    }
}
