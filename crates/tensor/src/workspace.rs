//! Reusable scratch-buffer arena for allocation-free hot paths.
//!
//! Serving the same model shape over and over makes every intermediate
//! buffer — im2col columns, GEMM pack panels, quantized activations, layer
//! outputs — a fixed-size request repeated each batch. [`Workspace`] turns
//! that repetition into reuse: buffers are *taken* from a pool, used, and
//! *recycled* back, so after a warmup pass the steady state performs no
//! heap allocation at all (a buffer whose capacity already suffices is
//! resized in place).
//!
//! The pool is deliberately dumb — a flat list of [`AlignedBuf`] matched
//! best-fit by capacity (plus a twin [`AlignedBytes`] pool for quantized
//! integer staging). The take/recycle sequence of a fixed model shape
//! is itself fixed, so the pool converges to one buffer per concurrently
//! live request after at most a few iterations, and stays there. Every
//! pooled buffer is 64-byte aligned, the contract SIMD panel loads build
//! on (see [`crate::simd`]).
//!
//! Recycling is cooperative, not tracked: a buffer that escapes (a logits
//! tensor handed to a caller) is simply never returned, and the pool
//! replaces it on the next take. Nothing breaks — one allocation happens.
//!
//! The workspace also carries the session's [`KernelMode`]: every GEMM and
//! row-pass kernel that receives a workspace resolves its SIMD backend from
//! it, so one flag threaded through `EngineConfig` switches the whole layer
//! stack between the pinned scalar reference and native dispatch.

use crate::buf::{AlignedBuf, AlignedBytes, AlignedInts};
use crate::simd::KernelMode;
use crate::tensor::Tensor;

/// A pool of reusable 64-byte-aligned scratch buffers.
///
/// # Example
///
/// ```
/// use tia_tensor::Workspace;
/// let mut ws = Workspace::new();
/// let a = ws.take_zeroed(128);
/// assert_eq!(a.len(), 128);
/// ws.recycle(a);
/// let b = ws.take_zeroed(64); // reuses the 128-capacity buffer
/// assert!(b.capacity() >= 128);
/// ```
#[derive(Debug)]
pub struct Workspace {
    pool: Vec<AlignedBuf>,
    byte_pool: Vec<AlignedBytes>,
    int_pool: Vec<AlignedInts>,
    max_pooled: usize,
    kernel: KernelMode,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

/// Cloning a workspace yields an *empty* one with the same pool cap and
/// kernel mode: scratch contents are meaningless across owners, and a cloned
/// `Network` replica must not drag another replica's warm buffers (each
/// shard warms its own).
impl Clone for Workspace {
    fn clone(&self) -> Self {
        let mut ws = Self::with_max_pooled(self.max_pooled);
        ws.kernel = self.kernel;
        ws
    }
}

impl Workspace {
    /// Default hard cap on pooled buffers. Paths that recycle more than they
    /// take (e.g. a server handed externally allocated request tensors every
    /// burst) must not grow the pool without bound: beyond the cap, recycled
    /// buffers are simply dropped — a later take allocates, which is
    /// graceful degradation, not a leak. The default is far above any layer
    /// stack's steady-state working set, so hot paths never hit it; servers
    /// tuning memory-vs-allocation trade-offs can override it per workspace
    /// with [`Workspace::with_max_pooled`].
    pub const DEFAULT_MAX_POOLED: usize = 256;

    /// Creates an empty workspace with the default pool cap and the
    /// process-wide default kernel mode (`TIA_KERNEL`).
    /// Allocation-free until the first take.
    pub fn new() -> Self {
        Self::with_max_pooled(Self::DEFAULT_MAX_POOLED)
    }

    /// Creates an empty workspace that parks at most `max_pooled` recycled
    /// buffers per pool (clamped to at least 1). Recycles beyond the cap
    /// drop their buffer instead of pooling it.
    pub fn with_max_pooled(max_pooled: usize) -> Self {
        Self {
            pool: Vec::new(),
            byte_pool: Vec::new(),
            int_pool: Vec::new(),
            max_pooled: max_pooled.max(1),
            kernel: KernelMode::global_default(),
        }
    }

    /// The pool cap this workspace was built with.
    pub fn max_pooled(&self) -> usize {
        self.max_pooled
    }

    /// The kernel dispatch mode kernels resolve their SIMD backend from.
    pub fn kernel(&self) -> KernelMode {
        self.kernel
    }

    /// Sets the kernel dispatch mode for every kernel that runs over this
    /// workspace.
    pub fn set_kernel(&mut self, kernel: KernelMode) {
        self.kernel = kernel;
    }

    /// Number of `f32` buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Number of byte buffers currently parked in the pool.
    pub fn pooled_bytes(&self) -> usize {
        self.byte_pool.len()
    }

    /// Total `f32` capacity parked in the pool.
    pub fn pooled_capacity(&self) -> usize {
        self.pool.iter().map(|b| b.capacity()).sum()
    }

    /// Pops the best-fitting pooled buffer (smallest capacity `>= n`), or
    /// allocates a fresh one when nothing fits.
    fn take_raw(&mut self, n: usize) -> AlignedBuf {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.pool.iter().enumerate() {
            let cap = b.capacity();
            if cap >= n && best.is_none_or(|(_, bc)| cap < bc) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => self.pool.swap_remove(i),
            None => AlignedBuf::with_capacity(n),
        }
    }

    /// Takes a buffer of exactly `n` zeros.
    pub fn take_zeroed(&mut self, n: usize) -> AlignedBuf {
        let mut b = self.take_raw(n);
        b.resize(n, 0.0);
        b.fill(0.0);
        b
    }

    /// Takes a buffer of length `n` with *unspecified contents* — for
    /// scratch that is fully overwritten before being read (GEMM pack
    /// panels, quantized-activation staging). Skips the zero fill.
    pub fn take_spare(&mut self, n: usize) -> AlignedBuf {
        let mut b = self.take_raw(n);
        b.resize(n, 0.0);
        b
    }

    /// Takes a buffer holding a copy of `src`.
    pub fn take_copy(&mut self, src: &[f32]) -> AlignedBuf {
        let mut b = self.take_raw(src.len());
        b.resize(src.len(), 0.0);
        b.copy_from_slice(src);
        b
    }

    /// Returns a buffer to the pool for reuse. Zero-capacity buffers and
    /// buffers beyond the pool cap are dropped instead of parked.
    pub fn recycle(&mut self, buf: AlignedBuf) {
        if buf.capacity() > 0 && self.pool.len() < self.max_pooled {
            self.pool.push(buf);
        }
    }

    /// Takes a byte buffer of length `n` with unspecified contents — the
    /// integer twin of [`Self::take_spare`], staging quantized activation
    /// levels and packed panels.
    pub fn take_bytes_spare(&mut self, n: usize) -> AlignedBytes {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.byte_pool.iter().enumerate() {
            let cap = b.capacity();
            if cap >= n && best.is_none_or(|(_, bc)| cap < bc) {
                best = Some((i, cap));
            }
        }
        let mut b = match best {
            Some((i, _)) => self.byte_pool.swap_remove(i),
            None => AlignedBytes::with_capacity(n),
        };
        b.resize(n, 0);
        b
    }

    /// Returns a byte buffer to the pool for reuse (the twin of
    /// [`Self::recycle`]).
    pub fn recycle_bytes(&mut self, buf: AlignedBytes) {
        if buf.capacity() > 0 && self.byte_pool.len() < self.max_pooled {
            self.byte_pool.push(buf);
        }
    }

    /// Takes an `i32` buffer of length `n` with unspecified contents —
    /// zero-point staging for the integer serving path.
    pub fn take_ints_spare(&mut self, n: usize) -> AlignedInts {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.int_pool.iter().enumerate() {
            let cap = b.capacity();
            if cap >= n && best.is_none_or(|(_, bc)| cap < bc) {
                best = Some((i, cap));
            }
        }
        let mut b = match best {
            Some((i, _)) => self.int_pool.swap_remove(i),
            None => AlignedInts::with_capacity(n),
        };
        b.resize(n, 0);
        b
    }

    /// Returns an `i32` buffer to the pool for reuse.
    pub fn recycle_ints(&mut self, buf: AlignedInts) {
        if buf.capacity() > 0 && self.int_pool.len() < self.max_pooled {
            self.int_pool.push(buf);
        }
    }

    /// Takes a zero-filled tensor whose storage comes from the pool.
    pub fn tensor_zeroed(&mut self, shape: &[usize]) -> Tensor {
        let n = shape.iter().product();
        Tensor::from_buf(self.take_zeroed(n), shape)
    }

    /// Takes a tensor with unspecified contents (see [`Self::take_spare`]).
    pub fn tensor_spare(&mut self, shape: &[usize]) -> Tensor {
        let n = shape.iter().product();
        Tensor::from_buf(self.take_spare(n), shape)
    }

    /// Takes a tensor holding a copy of `src`'s data under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn tensor_copy(&mut self, src: &Tensor, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(src.len(), n, "tensor_copy element count mismatch");
        Tensor::from_buf(self.take_copy(src.data()), shape)
    }

    /// Recycles a tensor's storage back into the pool.
    pub fn recycle_tensor(&mut self, t: Tensor) {
        self.recycle(t.into_buf());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses_capacity() {
        let mut ws = Workspace::new();
        let a = ws.take_zeroed(100);
        let ptr = a.as_ptr();
        ws.recycle(a);
        let b = ws.take_zeroed(50);
        assert_eq!(b.as_ptr(), ptr, "smaller request must reuse the buffer");
        assert_eq!(b.len(), 50);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn every_pooled_buffer_is_64_byte_aligned() {
        // The SIMD alignment contract: whatever the request size and however
        // buffers cycle through the pool, storage stays cacheline-aligned.
        let mut ws = Workspace::new();
        for n in [1usize, 7, 64, 100, 1023] {
            let f = ws.take_spare(n);
            assert_eq!(f.as_ptr() as usize % 64, 0, "f32 buffer misaligned");
            let y = ws.take_bytes_spare(n);
            assert_eq!(y.as_ptr() as usize % 64, 0, "byte buffer misaligned");
            ws.recycle(f);
            ws.recycle_bytes(y);
        }
        let t = ws.tensor_zeroed(&[3, 5]);
        assert_eq!(t.data().as_ptr() as usize % 64, 0, "tensor misaligned");
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        let small = ws.take_zeroed(10);
        let big = ws.take_zeroed(1000);
        let (sp, bp) = (small.as_ptr(), big.as_ptr());
        ws.recycle(big);
        ws.recycle(small);
        let first = ws.take_zeroed(5);
        let second = ws.take_zeroed(5);
        assert_eq!(first.as_ptr(), sp);
        assert_eq!(second.as_ptr(), bp, "only the big one is left");
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let mut ws = Workspace::new();
        let mut a = ws.take_zeroed(4);
        a.iter_mut().for_each(|v| *v = 7.0);
        ws.recycle(a);
        assert!(ws.take_zeroed(4).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn byte_pool_reuses_capacity() {
        let mut ws = Workspace::new();
        let a = ws.take_bytes_spare(128);
        let ptr = a.as_ptr();
        ws.recycle_bytes(a);
        let b = ws.take_bytes_spare(64);
        assert_eq!(b.as_ptr(), ptr, "byte pool must reuse the buffer");
        assert_eq!(ws.pooled_bytes(), 0);
        ws.recycle_bytes(b);
        assert_eq!(ws.pooled_bytes(), 1);
    }

    #[test]
    fn take_copy_and_tensors() {
        let mut ws = Workspace::new();
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = ws.tensor_copy(&t, &[4]);
        assert_eq!(c.data(), t.data());
        assert_eq!(c.shape(), &[4]);
        ws.recycle_tensor(c);
        let z = ws.tensor_zeroed(&[2, 2]);
        assert_eq!(z.shape(), &[2, 2]);
        assert!(z.data().iter().all(|&v| v == 0.0));
        assert_eq!(ws.pooled(), 0);
        ws.recycle_tensor(z);
        assert_eq!(ws.pooled(), 1);
        assert!(ws.pooled_capacity() >= 4);
    }

    #[test]
    fn clone_is_empty_but_keeps_kernel() {
        let mut ws = Workspace::new();
        ws.set_kernel(KernelMode::Scalar);
        ws.recycle(AlignedBuf::zeroed(64));
        let c = ws.clone();
        assert_eq!(c.pooled(), 0);
        assert_eq!(c.kernel(), KernelMode::Scalar);
    }

    #[test]
    fn pool_is_bounded() {
        // Recycling more than the cap (a server fed externally allocated
        // tensors every burst) must not grow the pool without bound.
        let mut ws = Workspace::new();
        for _ in 0..2 * Workspace::DEFAULT_MAX_POOLED {
            ws.recycle(AlignedBuf::zeroed(8));
            ws.recycle_bytes(AlignedBytes::zeroed(8));
        }
        assert_eq!(ws.pooled(), Workspace::DEFAULT_MAX_POOLED);
        assert_eq!(ws.pooled_bytes(), Workspace::DEFAULT_MAX_POOLED);
    }

    #[test]
    fn pool_cap_is_configurable() {
        let mut ws = Workspace::with_max_pooled(3);
        assert_eq!(ws.max_pooled(), 3);
        for _ in 0..10 {
            ws.recycle(AlignedBuf::zeroed(8));
        }
        assert_eq!(ws.pooled(), 3);
        // The cap survives cloning even though the contents do not.
        let c = ws.clone();
        assert_eq!(c.max_pooled(), 3);
        assert_eq!(c.pooled(), 0);
        // A zero cap is clamped: the pool still functions.
        assert_eq!(Workspace::with_max_pooled(0).max_pooled(), 1);
    }

    #[test]
    fn steady_state_stops_allocating() {
        // A fixed take/recycle cycle converges: after the first pass every
        // request finds a pooled fit, so capacities (and pointers) stabilise.
        let mut ws = Workspace::new();
        let sizes = [100usize, 30, 470, 30, 12];
        let run = |ws: &mut Workspace| {
            let bufs: Vec<AlignedBuf> = sizes.iter().map(|&n| ws.take_spare(n)).collect();
            let ptrs: Vec<*const f32> = bufs.iter().map(|b| b.as_ptr()).collect();
            for b in bufs {
                ws.recycle(b);
            }
            ptrs
        };
        let _ = run(&mut ws); // warmup
        let a = run(&mut ws);
        let b = run(&mut ws);
        assert_eq!(a, b, "steady-state buffer assignment must be stable");
    }
}
