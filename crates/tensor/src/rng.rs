//! Deterministic seeded RNG shared across the workspace.
//!
//! Every experiment in this reproduction is seeded so tables regenerate
//! bit-identically. The generator is a self-contained xoshiro256**
//! (Blackman & Vigna) seeded through SplitMix64 — no external crates — with
//! the couple of samplers the training/attack code needs (normal via
//! Box-Muller, choice, sign).

/// A seeded pseudo-random number generator.
///
/// # Example
///
/// ```
/// use tia_tensor::SeededRng;
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state; this is
        // the reference seeding procedure for the xoshiro family and
        // guarantees a non-zero state for every seed.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 high bits -> every value representable exactly in f32.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample (Box-Muller).
    pub fn normal(&mut self) -> f32 {
        // u1 in (0, 1] so the logarithm is finite.
        let u1 = ((self.next_u64() >> 40) + 1) as f32 * (1.0 / (1u32 << 24) as f32);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is invalid");
        // Lemire's multiply-shift; bias is < 2^-64 per draw, irrelevant for
        // the set sizes used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniformly picks an element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len())]
    }

    /// Random sign: +1.0 or -1.0 with equal probability.
    pub fn sign(&mut self) -> f32 {
        if self.next_u64() & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..16 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..8).all(|_| a.uniform() == b.uniform());
        assert!(!same);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SeededRng::new(0);
        let distinct: std::collections::HashSet<u64> = (0..32).map(|_| rng.next_u64()).collect();
        assert!(
            distinct.len() > 30,
            "zero seed must still produce a random stream"
        );
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SeededRng::new(77);
        for _ in 0..1000 {
            let v = rng.uniform();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = SeededRng::new(99);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.1, "var {}", var);
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SeededRng::new(5);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = SeededRng::new(17);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(11);
        let mut v: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
