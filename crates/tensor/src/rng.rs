//! Deterministic seeded RNG shared across the workspace.
//!
//! Every experiment in this reproduction is seeded so tables regenerate
//! bit-identically. We wrap `rand`'s `StdRng` and add the couple of samplers
//! the training/attack code needs (normal via Box-Muller, choice, sign).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded pseudo-random number generator.
///
/// # Example
///
/// ```
/// use tia_tensor::SeededRng;
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed) }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample (Box-Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen::<f32>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is invalid");
        self.inner.gen_range(0..n)
    }

    /// Uniformly picks an element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len())]
    }

    /// Random sign: +1.0 or -1.0 with equal probability.
    pub fn sign(&mut self) -> f32 {
        if self.inner.gen::<bool>() {
            1.0
        } else {
            -1.0
        }
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..16 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..8).all(|_| a.uniform() == b.uniform());
        assert!(!same);
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = SeededRng::new(99);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.1, "var {}", var);
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SeededRng::new(5);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(11);
        let mut v: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
