//! Softmax-family ops and small utilities operating on 2-D batches.

use crate::simd::{self, KernelMode};
use crate::Tensor;

/// Row-wise softmax of a `[n, c]` tensor.
///
/// The max/exp/sum tail dispatches through the process-default
/// [`KernelMode`] (`TIA_KERNEL`); vectorized backends are ULP-bounded
/// against scalar here (the one tolerance-tier kernel — see
/// [`crate::simd`]).
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let ops = simd::backend(KernelMode::global_default());
    assert_eq!(x.shape().len(), 2, "softmax_rows expects 2-D");
    let (n, c) = (x.shape()[0], x.shape()[1]);
    let mut out = Tensor::zeros(&[n, c]);
    for i in 0..n {
        let row = &x.data()[i * c..(i + 1) * c];
        let m = ops.max_f32(row);
        let orow = &mut out.data_mut()[i * c..(i + 1) * c];
        let denom = ops.exp_sub_sum(row, m, orow);
        for o in orow.iter_mut() {
            *o /= denom;
        }
    }
    out
}

/// Row-wise log-softmax of a `[n, c]` tensor (numerically stable).
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 2, "log_softmax_rows expects 2-D");
    let (n, c) = (x.shape()[0], x.shape()[1]);
    let mut out = Tensor::zeros(&[n, c]);
    for i in 0..n {
        let row = &x.data()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
        let orow = &mut out.data_mut()[i * c..(i + 1) * c];
        for (o, &v) in orow.iter_mut().zip(row) {
            *o = v - lse;
        }
    }
    out
}

/// Index of the maximum element of a slice (first on ties).
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Row-wise argmax of a `[n, c]` logits tensor: the top-1 class per row.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or has zero columns.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    assert_eq!(logits.shape().len(), 2, "argmax_rows expects 2-D logits");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    (0..n)
        .map(|i| argmax(&logits.data()[i * c..(i + 1) * c]))
        .collect()
}

/// Number of rows of `logits` whose top-1 prediction matches its label —
/// the single accuracy-counting primitive shared by `tia-nn`, `tia-engine`
/// and the evaluation harness in `tia-core`.
///
/// # Panics
///
/// Panics if `logits` is not `[labels.len(), c]`.
pub fn count_top1_correct(logits: &Tensor, labels: &[usize]) -> usize {
    assert_eq!(
        logits.shape().len(),
        2,
        "count_top1_correct expects 2-D logits"
    );
    assert_eq!(
        logits.shape()[0],
        labels.len(),
        "logit rows must match label count"
    );
    let c = logits.shape()[1];
    labels
        .iter()
        .enumerate()
        .filter(|&(i, &y)| argmax(&logits.data()[i * c..(i + 1) * c]) == y)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Monotone: larger logit -> larger prob.
        assert!(s.at2(0, 2) > s.at2(0, 1));
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let x = Tensor::from_vec(vec![0.5, -0.5, 2.0], &[1, 3]);
        let s = softmax_rows(&x);
        let ls = log_softmax_rows(&x);
        for (a, b) in s.data().iter().zip(ls.data()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![100.0, 101.0, 102.0], &[1, 3]);
        let y = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]);
        let sx = softmax_rows(&x);
        let sy = softmax_rows(&y);
        for (a, b) in sx.data().iter().zip(sy.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_first_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn argmax_rows_per_row() {
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 2.0, -1.0], &[2, 3]);
        assert_eq!(argmax_rows(&x), vec![1, 1]);
    }

    #[test]
    fn count_top1_matches_manual() {
        let x = Tensor::from_vec(vec![0.1, 0.9, 2.0, -1.0], &[2, 2]);
        assert_eq!(count_top1_correct(&x, &[1, 0]), 2);
        assert_eq!(count_top1_correct(&x, &[0, 1]), 0);
        assert_eq!(count_top1_correct(&x, &[1, 1]), 1);
    }
}
