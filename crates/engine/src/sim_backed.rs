//! Hardware co-simulation wrapper: serve batches *and* price them.

use crate::{Backend, BatchCost, LossKind};
use std::cell::RefCell;
use tia_accel::PrecisionPair;
use tia_nn::workload::NetworkSpec;
use tia_quant::Precision;
use tia_sim::Accelerator;
use tia_tensor::Tensor;

/// A backend that co-simulates every served batch through a
/// [`tia_sim::Accelerator`], so the serving path reports cycles, energy and
/// sustained FPS alongside logits.
///
/// The trainable model (reduced scale) and the accelerator workload (true
/// layer geometry, a [`NetworkSpec`]) are decoupled exactly as in the rest
/// of the reproduction: the wrapper executes `inner` for numerics and prices
/// each batch against `spec` on `accel`. Per-(layer, precision) simulation
/// results are memoized inside the accelerator, so only the first batch at a
/// new precision pays for the dataflow search.
///
/// Full precision (`None`) is priced at 16-bit, the accelerator's highest
/// supported execution precision (see `Precision::highest`).
#[derive(Debug)]
pub struct SimBacked<B> {
    inner: B,
    // RefCell: `Backend::cost` takes `&self`, but the accelerator memoizes
    // per-layer searches in an internal cache behind `&mut self`.
    accel: RefCell<Accelerator>,
    spec: NetworkSpec,
    ledger: BatchCost,
}

impl<B: Backend> SimBacked<B> {
    /// Wraps a backend with an accelerator cost model for `spec`.
    pub fn new(inner: B, accel: Accelerator, spec: NetworkSpec) -> Self {
        Self {
            inner,
            accel: RefCell::new(accel),
            spec,
            ledger: BatchCost::default(),
        }
    }

    /// Total cost of everything served so far.
    ///
    /// "Served" means every [`Backend::infer_batch`] execution — engine
    /// traffic *and* direct evaluation scans (e.g. a transfer-matrix sweep)
    /// both accrue here, since each runs the priced forward pass. Gradient
    /// queries (`loss_and_input_grad` / `loss_value`) are deliberately not
    /// billed: they model the *attacker's* compute, not the defender's
    /// accelerator. Use [`SimBacked::reset_ledger`] to scope a measurement
    /// to one serving window.
    pub fn ledger(&self) -> BatchCost {
        self.ledger
    }

    /// Clears the served-cost ledger.
    pub fn reset_ledger(&mut self) {
        self.ledger = BatchCost::default();
    }

    /// The workload priced by the cost model.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Borrows the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutably borrows the wrapped backend.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwraps into the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn per_frame(&self, precision: Option<Precision>) -> (f64, f64, f64) {
        let bits = precision.map_or(Precision::MAX_BITS, Precision::bits);
        let perf = self
            .accel
            .borrow_mut()
            .simulate_network(&self.spec, PrecisionPair::symmetric(bits));
        (perf.total_cycles, perf.total_energy(), perf.fps)
    }
}

impl<B: Backend> Backend for SimBacked<B> {
    fn infer_batch(&mut self, x: &Tensor, precision: Option<Precision>) -> Tensor {
        let logits = self.inner.infer_batch(x, precision);
        let cost = self.cost(x.shape()[0], precision);
        self.ledger.accumulate(&cost);
        logits
    }

    fn cost(&self, frames: usize, precision: Option<Precision>) -> BatchCost {
        let (cycles, energy, fps) = self.per_frame(precision);
        BatchCost::modeled(frames, cycles, energy, fps)
    }

    fn loss_and_input_grad(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        loss: LossKind,
    ) -> (f32, Tensor) {
        self.inner.loss_and_input_grad(x, labels, loss)
    }

    fn loss_value(&mut self, x: &Tensor, labels: &[usize], loss: LossKind) -> f32 {
        self.inner.loss_value(x, labels, loss)
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        self.inner.set_precision(p);
    }

    fn precision(&self) -> Option<Precision> {
        self.inner.precision()
    }

    fn recycle_output(&mut self, logits: Tensor) {
        self.inner.recycle_output(logits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_dataflow::{EvoSearch, SearchMode};
    use tia_nn::zoo;
    use tia_tensor::SeededRng;

    fn small_sim() -> Accelerator {
        Accelerator::ours().with_search(EvoSearch {
            population: 8,
            cycles: 3,
            mode: SearchMode::Full,
        })
    }

    fn wrapped() -> SimBacked<tia_nn::Network> {
        let mut rng = SeededRng::new(1);
        let net = zoo::preact_resnet18_lite(3, 4, 4, &mut rng);
        SimBacked::new(net, small_sim(), NetworkSpec::resnet18_cifar())
    }

    #[test]
    fn logits_match_inner_backend() {
        let mut rng = SeededRng::new(2);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let mut sim = wrapped();
        let y_sim = sim.infer_batch(&x, Some(Precision::new(8)));
        let mut plain = sim.into_inner();
        let y_plain = plain.infer_batch(&x, Some(Precision::new(8)));
        assert_eq!(
            y_sim.data(),
            y_plain.data(),
            "co-simulation must not change numerics"
        );
    }

    #[test]
    fn ledger_matches_simulate_network() {
        let mut rng = SeededRng::new(3);
        let x = Tensor::rand_uniform(&[3, 3, 8, 8], 0.0, 1.0, &mut rng);
        let mut sim = wrapped();
        let _ = sim.infer_batch(&x, Some(Precision::new(4)));
        let perf = small_sim()
            .simulate_network(&NetworkSpec::resnet18_cifar(), PrecisionPair::symmetric(4));
        let ledger = sim.ledger();
        assert_eq!(ledger.frames, 3);
        assert!((ledger.cycles - 3.0 * perf.total_cycles).abs() < 1e-6 * ledger.cycles.abs());
        assert!((ledger.energy - 3.0 * perf.total_energy()).abs() < 1e-6 * ledger.energy.abs());
        assert!(ledger.modeled);
    }

    #[test]
    fn lower_precision_is_cheaper() {
        let sim = wrapped();
        let c4 = sim.cost(8, Some(Precision::new(4)));
        let c16 = sim.cost(8, Some(Precision::new(16)));
        assert!(
            c4.cycles < c16.cycles,
            "4-bit should cost fewer cycles than 16-bit"
        );
        assert!(c4.fps > c16.fps);
    }

    #[test]
    fn full_precision_priced_as_16_bit() {
        let sim = wrapped();
        let fp = sim.cost(1, None);
        let b16 = sim.cost(1, Some(Precision::new(16)));
        assert_eq!(fp.cycles, b16.cycles);
    }
}
