//! The execution backend abstraction every inference consumer sits on.

use crate::BatchCost;
use tia_nn::{cross_entropy, cw_margin_loss, Mode, Network};
use tia_quant::Precision;
use tia_tensor::{KernelMode, Tensor};

/// Which scalar loss a gradient query climbs.
///
/// Lives here (rather than in `tia-attack`) because the loss surface is a
/// property of the execution backend; `tia-attack` re-exports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// Cross-entropy (FGSM/PGD/APGD/Bandits/E-PGD).
    CrossEntropy,
    /// Carlini-Wagner margin `max_{j≠y} z_j − z_y` (CW-∞).
    CwMargin,
}

/// A batched, precision-switchable inference executor.
///
/// This is the one serving surface of the workspace: `tia_nn::Network`
/// implements it directly (software path), [`crate::SimBacked`] implements
/// it with hardware co-simulation, and everything downstream — the
/// micro-batching [`crate::Engine`], the `tia-attack` `TargetModel` blanket
/// impl, and the `tia-core` evaluation harness — is generic over it.
///
/// All inference runs in evaluation mode (frozen BN statistics). The
/// `precision` argument *replaces* the backend's active precision for the
/// batch and leaves it set, exactly like `Network::set_precision`; callers
/// that must preserve the caller-visible precision (the engine, the eval
/// harness) save and restore around their batches.
pub trait Backend {
    /// Runs one `[N, C, H, W]` batch at the given precision (`None` = full
    /// precision), returning `[N, classes]` logits.
    fn infer_batch(&mut self, x: &Tensor, precision: Option<Precision>) -> Tensor;

    /// Prices a batch of `frames` inferences at a precision *without*
    /// executing it. Backends without a hardware model report
    /// [`BatchCost::unmodeled`].
    ///
    /// Implementations must price **linearly in `frames`** (per-frame cost
    /// times the frame count, as [`BatchCost::modeled`] does): the sharded
    /// runtime bills each request at `cost(1, p)` and merges in request-id
    /// order, while the single-threaded engine bills `cost(n, p)` per
    /// micro-batch — a nonlinear model (batching discounts, per-batch
    /// overheads) would make the two surfaces disagree.
    fn cost(&self, frames: usize, precision: Option<Precision>) -> BatchCost {
        let _ = precision;
        BatchCost::unmodeled(frames)
    }

    /// `(loss, d loss / d x)` at the backend's current precision — the
    /// primitive behind every gradient-based adversarial attack. Must leave
    /// parameter gradients untouched.
    fn loss_and_input_grad(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        loss: LossKind,
    ) -> (f32, Tensor);

    /// Loss only (black-box attacks). Default routes through the gradient
    /// path; implementations may override with something cheaper.
    fn loss_value(&mut self, x: &Tensor, labels: &[usize], loss: LossKind) -> f32 {
        self.loss_and_input_grad(x, labels, loss).0
    }

    /// Switches the active execution precision (`None` = full precision).
    fn set_precision(&mut self, p: Option<Precision>);

    /// The currently active precision.
    fn precision(&self) -> Option<Precision>;

    /// Selects the kernel dispatch mode (`Scalar` = pinned bitwise
    /// reference kernels and f32 fake-quant inference, `Native` = runtime
    /// SIMD dispatch plus the true-integer serving path). Backends without
    /// a kernel notion ignore it (the default).
    fn set_kernel(&mut self, k: KernelMode) {
        let _ = k;
    }

    /// Hands a logits tensor from [`Backend::infer_batch`] back to the
    /// backend for storage reuse once the caller is done reading it. The
    /// engine calls this after splitting a batch into responses; backends
    /// without an arena just drop the tensor (the default).
    fn recycle_output(&mut self, logits: Tensor) {
        let _ = logits;
    }
}

/// Mutable references are backends too, so the engine and evaluation
/// harness can borrow a backend instead of consuming it.
impl<B: Backend + ?Sized> Backend for &mut B {
    fn infer_batch(&mut self, x: &Tensor, precision: Option<Precision>) -> Tensor {
        (**self).infer_batch(x, precision)
    }

    fn cost(&self, frames: usize, precision: Option<Precision>) -> BatchCost {
        (**self).cost(frames, precision)
    }

    fn loss_and_input_grad(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        loss: LossKind,
    ) -> (f32, Tensor) {
        (**self).loss_and_input_grad(x, labels, loss)
    }

    fn loss_value(&mut self, x: &Tensor, labels: &[usize], loss: LossKind) -> f32 {
        (**self).loss_value(x, labels, loss)
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        (**self).set_precision(p);
    }

    fn precision(&self) -> Option<Precision> {
        (**self).precision()
    }

    fn set_kernel(&mut self, k: KernelMode) {
        (**self).set_kernel(k);
    }

    fn recycle_output(&mut self, logits: Tensor) {
        (**self).recycle_output(logits);
    }
}

/// The software path: run the layer graph directly.
impl Backend for Network {
    fn infer_batch(&mut self, x: &Tensor, precision: Option<Precision>) -> Tensor {
        Network::set_precision(self, precision);
        // Serving mode: layers skip every backward cache and recycle all
        // intermediates — the zero-allocation steady state. Under the
        // `scalar` kernel mode this is numerically identical to Eval;
        // under `native`, quantized layers take the true-integer path
        // (a different, still per-sample-deterministic numeric).
        self.forward(x, Mode::Infer)
    }

    fn loss_and_input_grad(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        loss: LossKind,
    ) -> (f32, Tensor) {
        // Attack queries must not pollute parameter gradients used by
        // training, so bracket the backward pass with zero_grad.
        self.zero_grad();
        let logits = self.forward(x, Mode::Eval);
        let lg = match loss {
            LossKind::CrossEntropy => cross_entropy(&logits, labels),
            LossKind::CwMargin => cw_margin_loss(&logits, labels),
        };
        let gx = self.backward(&lg.grad);
        self.zero_grad();
        (lg.loss, gx)
    }

    fn loss_value(&mut self, x: &Tensor, labels: &[usize], loss: LossKind) -> f32 {
        let logits = self.forward(x, Mode::Eval);
        match loss {
            LossKind::CrossEntropy => cross_entropy(&logits, labels).loss,
            LossKind::CwMargin => cw_margin_loss(&logits, labels).loss,
        }
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        Network::set_precision(self, p);
    }

    fn precision(&self) -> Option<Precision> {
        Network::precision(self)
    }

    fn set_kernel(&mut self, k: KernelMode) {
        Network::set_kernel(self, k);
    }

    fn recycle_output(&mut self, logits: Tensor) {
        Network::recycle(self, logits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_nn::zoo;
    use tia_tensor::SeededRng;

    #[test]
    fn network_backend_runs_batches() {
        let mut rng = SeededRng::new(1);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = Backend::infer_batch(&mut net, &x, Some(Precision::new(8)));
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(Backend::precision(&net), Some(Precision::new(8)));
    }

    #[test]
    fn network_backend_cost_is_unmodeled() {
        let mut rng = SeededRng::new(2);
        let net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let c = net.cost(16, None);
        assert_eq!(c.frames, 16);
        assert!(!c.modeled);
    }

    #[test]
    fn grad_queries_leave_param_grads_clean() {
        let mut rng = SeededRng::new(3);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (loss, gx) = Backend::loss_and_input_grad(&mut net, &x, &[0], LossKind::CrossEntropy);
        assert!(loss.is_finite());
        assert_eq!(gx.shape(), x.shape());
        let mut g = 0.0;
        net.visit_params(&mut |p| g += p.grad.norm());
        assert_eq!(g, 0.0);
    }

    #[test]
    fn mut_ref_is_a_backend() {
        let mut rng = SeededRng::new(4);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let mut r = &mut net;
        Backend::set_precision(&mut r, Some(Precision::new(4)));
        assert_eq!(Backend::precision(&r), Some(Precision::new(4)));
    }
}
