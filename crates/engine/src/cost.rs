//! Hardware cost of served batches.

/// Cycles/energy/throughput attributed to one served batch (or accumulated
/// over many) by a [`crate::Backend`]'s cost model.
///
/// A backend without a hardware model (the plain software path) reports an
/// *unmodeled* cost: zeros with [`BatchCost::modeled`] unset, so aggregation
/// stays well-defined while consumers can still distinguish "free" from
/// "unknown".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatchCost {
    /// Frames in the batch (or total frames when accumulated).
    pub frames: usize,
    /// Accelerator cycles for the whole batch.
    pub cycles: f64,
    /// Energy for the whole batch (model units, see `tia-accel`).
    pub energy: f64,
    /// Sustained throughput at the batch's precision, frames per second.
    pub fps: f64,
    /// Whether a hardware model actually produced these numbers.
    pub modeled: bool,
}

impl BatchCost {
    /// Cost of a batch served by a backend with no hardware model.
    pub fn unmodeled(frames: usize) -> Self {
        Self {
            frames,
            ..Self::default()
        }
    }

    /// Cost of a batch priced by an accelerator model from per-frame numbers.
    pub fn modeled(frames: usize, cycles_per_frame: f64, energy_per_frame: f64, fps: f64) -> Self {
        Self {
            frames,
            cycles: cycles_per_frame * frames as f64,
            energy: energy_per_frame * frames as f64,
            fps,
            modeled: true,
        }
    }

    /// Accumulates another batch's cost into this one (throughput becomes the
    /// frame-weighted mean).
    pub fn accumulate(&mut self, other: &BatchCost) {
        let frames = self.frames + other.frames;
        if frames > 0 {
            self.fps =
                (self.fps * self.frames as f64 + other.fps * other.frames as f64) / frames as f64;
        }
        self.frames = frames;
        self.cycles += other.cycles;
        self.energy += other.energy;
        self.modeled |= other.modeled;
    }

    /// Mean energy per frame (0 when nothing has been served).
    pub fn energy_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.energy / self.frames as f64
        }
    }

    /// Mean cycles per frame (0 when nothing has been served).
    pub fn cycles_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.cycles / self.frames as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmodeled_is_zero_cost() {
        let c = BatchCost::unmodeled(8);
        assert_eq!(c.frames, 8);
        assert_eq!(c.cycles, 0.0);
        assert!(!c.modeled);
    }

    #[test]
    fn modeled_scales_by_frames() {
        let c = BatchCost::modeled(4, 100.0, 2.5, 1e6);
        assert_eq!(c.cycles, 400.0);
        assert_eq!(c.energy, 10.0);
        assert_eq!(c.energy_per_frame(), 2.5);
        assert_eq!(c.cycles_per_frame(), 100.0);
        assert!(c.modeled);
    }

    #[test]
    fn accumulate_sums_and_weights_fps() {
        let mut a = BatchCost::modeled(2, 10.0, 1.0, 100.0);
        let b = BatchCost::modeled(6, 10.0, 1.0, 200.0);
        a.accumulate(&b);
        assert_eq!(a.frames, 8);
        assert_eq!(a.cycles, 80.0);
        assert!((a.fps - 175.0).abs() < 1e-9);
    }
}
