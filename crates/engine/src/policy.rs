//! Precision-selection policies for serving (the paper's RPS inference).

use tia_quant::{Precision, PrecisionSet};
use tia_tensor::SeededRng;

/// How the serving engine chooses an execution precision.
///
/// This absorbs and replaces the old `tia_core::InferencePolicy`: the policy
/// is now a first-class part of the inference engine rather than a detail of
/// the evaluation harness, so attacks, evaluation, benchmarks and serving
/// all share one definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrecisionPolicy {
    /// Always the same precision (`None` = full precision).
    Fixed(Option<Precision>),
    /// RPS: a fresh uniform sample from the set per request or per batch
    /// (see [`crate::PolicyGranularity`]).
    Random(PrecisionSet),
}

impl PrecisionPolicy {
    /// Draws one precision according to the policy.
    pub fn sample(&self, rng: &mut SeededRng) -> Option<Precision> {
        match self {
            PrecisionPolicy::Fixed(p) => *p,
            PrecisionPolicy::Random(set) => Some(set.sample(rng)),
        }
    }

    /// Whether the policy can ever return two different precisions.
    pub fn is_random(&self) -> bool {
        matches!(self, PrecisionPolicy::Random(set) if set.len() > 1)
    }
}

impl std::fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecisionPolicy::Fixed(None) => write!(f, "fp32"),
            PrecisionPolicy::Fixed(Some(p)) => write!(f, "{}", p),
            PrecisionPolicy::Random(set) => write!(f, "RPS {}", set),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_returns_same() {
        let mut rng = SeededRng::new(1);
        let p = PrecisionPolicy::Fixed(Some(Precision::new(6)));
        for _ in 0..10 {
            assert_eq!(p.sample(&mut rng), Some(Precision::new(6)));
        }
        assert!(!p.is_random());
    }

    #[test]
    fn random_samples_within_set() {
        let mut rng = SeededRng::new(2);
        let set = PrecisionSet::range(4, 8);
        let p = PrecisionPolicy::Random(set.clone());
        assert!(p.is_random());
        for _ in 0..50 {
            assert!(set.contains(p.sample(&mut rng).unwrap()));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(PrecisionPolicy::Fixed(None).to_string(), "fp32");
        assert_eq!(
            PrecisionPolicy::Fixed(Some(Precision::new(8))).to_string(),
            "8-bit"
        );
        assert_eq!(
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)).to_string(),
            "RPS 4~8-bit"
        );
    }
}
