//! Precision-selection policies for serving (the paper's RPS inference).

use tia_quant::{Precision, PrecisionSet};
use tia_tensor::SeededRng;

/// How the serving engine chooses an execution precision.
///
/// This absorbs and replaces the old `tia_core::InferencePolicy`: the policy
/// is now a first-class part of the inference engine rather than a detail of
/// the evaluation harness, so attacks, evaluation, benchmarks and serving
/// all share one definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrecisionPolicy {
    /// Always the same precision (`None` = full precision).
    Fixed(Option<Precision>),
    /// RPS: a fresh uniform sample from the set per request or per batch
    /// (see [`crate::PolicyGranularity`]).
    Random(PrecisionSet),
    /// RPS whose live range a feedback controller may narrow toward the
    /// low end under overload (graceful degradation), bounded below by
    /// per-request floors. At degradation level 0 with no floor this is
    /// exactly [`PrecisionPolicy::Random`]; see
    /// [`PrecisionPolicy::sample_degraded`].
    Adaptive(PrecisionSet),
}

impl PrecisionPolicy {
    /// Draws one precision according to the policy, at degradation level 0
    /// with no floor.
    pub fn sample(&self, rng: &mut SeededRng) -> Option<Precision> {
        self.sample_degraded(rng, 0, None)
    }

    /// Draws one precision under a live degradation `level` and an
    /// optional per-request `floor`.
    ///
    /// `Fixed` stays pinned and consumes no draw. `Random` is the static
    /// RPS mix — it ignores level and floor but still consumes exactly one
    /// draw. `Adaptive` samples uniformly from the degraded window of its
    /// set: members at or above the floor with the `level` highest
    /// dropped, always keeping at least one (see
    /// [`PrecisionSet::degraded_window`]).
    ///
    /// Every sampling variant consumes exactly one draw regardless of
    /// level or floor, so a controller shifting the level mid-stream never
    /// moves the seeded stream position — only the value the same draw
    /// maps to. This is what keeps adaptive serving's schedule a pure
    /// function of the seed and the submission order.
    pub fn sample_degraded(
        &self,
        rng: &mut SeededRng,
        level: u8,
        floor: Option<Precision>,
    ) -> Option<Precision> {
        match self {
            PrecisionPolicy::Fixed(p) => *p,
            PrecisionPolicy::Random(set) => Some(set.sample(rng)),
            PrecisionPolicy::Adaptive(set) => {
                let window = set.degraded_window(level as usize, floor);
                Some(set.sample_window(rng, window))
            }
        }
    }

    /// Whether the policy can ever return two different precisions.
    pub fn is_random(&self) -> bool {
        match self {
            PrecisionPolicy::Fixed(_) => false,
            PrecisionPolicy::Random(set) | PrecisionPolicy::Adaptive(set) => set.len() > 1,
        }
    }

    /// The highest degradation level that still changes the sampled
    /// window: one less than the adaptive set's size (0 for non-adaptive
    /// policies, which never degrade).
    pub fn max_degrade_level(&self) -> u8 {
        match self {
            PrecisionPolicy::Adaptive(set) => (set.len() - 1).min(u8::MAX as usize) as u8,
            _ => 0,
        }
    }
}

impl std::fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecisionPolicy::Fixed(None) => write!(f, "fp32"),
            PrecisionPolicy::Fixed(Some(p)) => write!(f, "{}", p),
            PrecisionPolicy::Random(set) => write!(f, "RPS {}", set),
            PrecisionPolicy::Adaptive(set) => write!(f, "adaptive RPS {}", set),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_returns_same() {
        let mut rng = SeededRng::new(1);
        let p = PrecisionPolicy::Fixed(Some(Precision::new(6)));
        for _ in 0..10 {
            assert_eq!(p.sample(&mut rng), Some(Precision::new(6)));
        }
        assert!(!p.is_random());
    }

    #[test]
    fn random_samples_within_set() {
        let mut rng = SeededRng::new(2);
        let set = PrecisionSet::range(4, 8);
        let p = PrecisionPolicy::Random(set.clone());
        assert!(p.is_random());
        for _ in 0..50 {
            assert!(set.contains(p.sample(&mut rng).unwrap()));
        }
    }

    #[test]
    fn adaptive_at_level_zero_matches_random() {
        // Same seed, same draws: an undegraded adaptive policy is the
        // static RPS mix, value for value.
        let set = PrecisionSet::range(4, 8);
        let random = PrecisionPolicy::Random(set.clone());
        let adaptive = PrecisionPolicy::Adaptive(set);
        let (mut ra, mut rb) = (SeededRng::new(5), SeededRng::new(5));
        for _ in 0..32 {
            assert_eq!(random.sample(&mut ra), adaptive.sample(&mut rb));
        }
    }

    #[test]
    fn degraded_sampling_respects_level_and_floor() {
        let set = PrecisionSet::range(4, 8);
        let p = PrecisionPolicy::Adaptive(set);
        let mut rng = SeededRng::new(6);
        for _ in 0..32 {
            // Level 3 keeps {4,5}; a 6-bit floor overrides to {6} alone.
            let b = p.sample_degraded(&mut rng, 3, None).unwrap().bits();
            assert!(b <= 5, "level 3 leaked {b}-bit");
            let f = p
                .sample_degraded(&mut rng, 3, Some(Precision::new(6)))
                .unwrap();
            assert_eq!(f.bits(), 6);
        }
        assert!(p.is_random());
        assert_eq!(p.max_degrade_level(), 4);
        assert_eq!(PrecisionPolicy::Fixed(None).max_degrade_level(), 0);
    }

    #[test]
    fn degraded_sampling_consumes_one_draw_at_any_level() {
        let set = PrecisionSet::range(4, 8);
        let p = PrecisionPolicy::Adaptive(set);
        let next_after = |level, floor| {
            let mut rng = SeededRng::new(7);
            let _ = p.sample_degraded(&mut rng, level, floor);
            rng.next_u64()
        };
        let base = next_after(0, None);
        assert_eq!(base, next_after(4, None));
        assert_eq!(base, next_after(2, Some(Precision::new(7))));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PrecisionPolicy::Fixed(None).to_string(), "fp32");
        assert_eq!(
            PrecisionPolicy::Fixed(Some(Precision::new(8))).to_string(),
            "8-bit"
        );
        assert_eq!(
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)).to_string(),
            "RPS 4~8-bit"
        );
        assert_eq!(
            PrecisionPolicy::Adaptive(PrecisionSet::range(4, 8)).to_string(),
            "adaptive RPS 4~8-bit"
        );
    }
}
