//! The micro-batching, policy-driven serving loop.

use crate::{Backend, BatchCost, PrecisionPolicy};
use tia_quant::Precision;
use tia_tensor::{argmax_rows, KernelMode, SeededRng, Tensor, Workspace};

/// Identifier handed back by [`Engine::submit`]; responses carry it so
/// callers can re-associate out-of-order completions.
pub type RequestId = u64;

/// Whether the policy is sampled once per coalesced batch or once per
/// request (Alg. 1's per-query random switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyGranularity {
    /// One precision draw per served request — the paper's RPS inference.
    #[default]
    PerRequest,
    /// One precision draw per coalesced batch — cheaper switching, the mode
    /// batch-serving deployments use.
    PerBatch,
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Largest coalesced batch the engine will form.
    pub max_batch: usize,
    /// Per-request vs per-batch precision sampling.
    pub granularity: PolicyGranularity,
    /// Seed of the engine's private policy RNG; a fixed seed yields a
    /// reproducible precision-switch schedule.
    pub seed: u64,
    /// Cap on buffers parked in each engine-owned [`Workspace`] arena (the
    /// single-threaded engine's batch-assembly arena, and every sharded
    /// worker's). Recycles beyond the cap drop their buffer — bounded
    /// memory, graceful degradation. Defaults to
    /// [`Workspace::DEFAULT_MAX_POOLED`].
    pub workspace_cap: usize,
    /// Kernel dispatch mode pushed into the backend at engine construction:
    /// `Scalar` pins the bitwise reference kernels (reproducing historical
    /// logits exactly), `Native` enables runtime SIMD dispatch and the
    /// true-integer serving path. Defaults to the process-wide mode from
    /// the `TIA_KERNEL` environment variable (`native` when unset).
    pub kernel: KernelMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            granularity: PolicyGranularity::PerRequest,
            seed: 0,
            workspace_cap: Workspace::DEFAULT_MAX_POOLED,
            kernel: KernelMode::global_default(),
        }
    }
}

impl EngineConfig {
    /// Sets the maximum coalesced batch size (clamped to at least 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the policy sampling granularity.
    pub fn with_granularity(mut self, granularity: PolicyGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the policy RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-arena workspace pool cap (clamped to at least 1).
    pub fn with_workspace_cap(mut self, cap: usize) -> Self {
        self.workspace_cap = cap.max(1);
        self
    }

    /// Sets the kernel dispatch mode.
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }
}

/// Why a submission was refused by [`Engine::try_submit`] /
/// [`crate::ShardedEngine::try_submit`].
///
/// The panicking `submit` entry points wrap these; network front-ends use
/// the `try_` forms so a malformed request costs the caller a rejection
/// frame, never the server its process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The image tensor was not 3-D `[C, H, W]`.
    NotAnImage {
        /// The submitted tensor's rank.
        rank: usize,
    },
    /// The image shape differs from the first submitted image (one engine
    /// serves one input geometry).
    ShapeMismatch {
        /// The geometry pinned by the first submission.
        expected: Vec<usize>,
        /// The offending submission's shape.
        got: Vec<usize>,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::NotAnImage { rank } => {
                write!(
                    f,
                    "expected a single [C, H, W] image, got a rank-{rank} tensor"
                )
            }
            SubmitError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "image shape changed mid-stream: expected {expected:?}, got {got:?}"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Submit-time precision assignment shared by [`Engine`] and
/// [`crate::ShardedEngine`] — one definition so the two surfaces can never
/// diverge on the draw rule: under per-request granularity, draw from the
/// seeded policy stream now; under per-batch, leave unassigned (the flush
/// path draws once per coalesced chunk).
/// `level` and `floor` reach the draw only through
/// [`PrecisionPolicy::sample_degraded`], which consumes exactly one draw for
/// every sampling policy at every level — controller shifts can change the
/// value a draw maps to, never the stream position.
pub(crate) fn draw_precision(
    policy: &PrecisionPolicy,
    rng: &mut SeededRng,
    granularity: PolicyGranularity,
    level: u8,
    floor: Option<Precision>,
) -> Option<Option<Precision>> {
    match granularity {
        PolicyGranularity::PerRequest => Some(policy.sample_degraded(rng, level, floor)),
        PolicyGranularity::PerBatch => None,
    }
}

/// The pinned-submission counterpart of [`draw_precision`]: a pin consumes
/// no draw, and under per-batch granularity it is ignored entirely.
pub(crate) fn pin_precision(
    granularity: PolicyGranularity,
    precision: Option<Precision>,
) -> Option<Option<Precision>> {
    match granularity {
        PolicyGranularity::PerRequest => Some(precision),
        PolicyGranularity::PerBatch => None,
    }
}

/// Shared submit-time validation: pins the engine's input geometry on first
/// use, rejects rank/shape mismatches after.
pub(crate) fn check_image(
    image_shape: &mut Option<Vec<usize>>,
    image: &Tensor,
) -> Result<(), SubmitError> {
    if image.shape().len() != 3 {
        return Err(SubmitError::NotAnImage {
            rank: image.shape().len(),
        });
    }
    match image_shape {
        Some(shape) if shape.as_slice() != image.shape() => Err(SubmitError::ShapeMismatch {
            expected: shape.clone(),
            got: image.shape().to_vec(),
        }),
        Some(_) => Ok(()),
        None => {
            *image_shape = Some(image.shape().to_vec());
            Ok(())
        }
    }
}

/// One completed request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The id returned by the matching [`Engine::submit`].
    pub id: RequestId,
    /// Class logits, `[classes]`.
    pub logits: Tensor,
    /// Top-1 predicted class.
    pub top1: usize,
    /// The precision the request was executed at.
    pub precision: Option<Precision>,
}

/// Aggregate serving statistics since construction (or the last
/// [`Engine::reset_stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Requests completed.
    pub requests: usize,
    /// Coalesced batches executed.
    pub batches: usize,
    /// Accumulated hardware cost as reported by the backend's cost hook.
    pub cost: BatchCost,
}

impl EngineStats {
    /// Mean frames per executed batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

struct Pending {
    id: RequestId,
    // Assigned at submit time under per-request granularity so the schedule
    // depends only on the seed and submission order, not on flush timing.
    precision: Option<Option<Precision>>,
    image: Tensor,
}

/// Groups requests by assigned precision — stable, first-seen order — so
/// per-request precision switching still serves full micro-batches.
///
/// This is *the* grouping: the single-threaded engine and every shard of
/// the sharded runtime must batch identically (same groups ⇒ same chunks ⇒
/// same per-batch execution), so both call this one function. Changing the
/// grouping in one path but not the other would silently break the sharded
/// determinism contract.
pub(crate) fn group_by_precision<T>(
    items: &[T],
    precision_of: impl Fn(&T) -> Option<Precision>,
) -> Vec<(Option<Precision>, Vec<&T>)> {
    let mut groups: Vec<(Option<Precision>, Vec<&T>)> = Vec::new();
    for item in items {
        let p = precision_of(item);
        match groups.iter_mut().find(|(gp, _)| *gp == p) {
            Some((_, members)) => members.push(item),
            None => groups.push((p, vec![item])),
        }
    }
    groups
}

/// A micro-batching inference server over any [`Backend`].
///
/// Requests are single images (`[C, H, W]`); the engine coalesces them into
/// batches of at most `max_batch`, samples the [`PrecisionPolicy`] at the
/// configured granularity, executes each batch through the backend, and
/// returns per-request [`Response`]s in submission order.
///
/// Determinism: the layer stack is batch-size-invariant in eval mode (all
/// quantization calibrates per sample), so engine logits are bitwise
/// identical to per-sample `Network::forward` at every precision, and the
/// precision schedule is a pure function of the config seed and the
/// submission order.
pub struct Engine<B: Backend> {
    backend: B,
    policy: PrecisionPolicy,
    cfg: EngineConfig,
    rng: SeededRng,
    // Live degradation level applied to Adaptive policy draws; 0 = the
    // full set. Set by the serving layer's feedback controller.
    degrade: u8,
    pending: Vec<Pending>,
    next_id: RequestId,
    stats: EngineStats,
    // Fixed by the first submit; mixed shapes would otherwise be coalesced
    // into one batch tensor and silently misinterpreted.
    image_shape: Option<Vec<usize>>,
    // Scratch arena backing batch-tensor assembly and submitted-image
    // staging; request images return here after each flush.
    ws: Workspace,
}

impl<B: Backend> Engine<B> {
    /// Creates an engine serving `backend` under `policy`.
    pub fn new(mut backend: B, policy: PrecisionPolicy, cfg: EngineConfig) -> Self {
        let rng = SeededRng::new(cfg.seed);
        let ws = Workspace::with_max_pooled(cfg.workspace_cap);
        backend.set_kernel(cfg.kernel);
        Self {
            backend,
            policy,
            cfg,
            rng,
            degrade: 0,
            pending: Vec::new(),
            next_id: 0,
            stats: EngineStats::default(),
            image_shape: None,
            ws,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &PrecisionPolicy {
        &self.policy
    }

    /// Replaces the policy (takes effect for requests not yet assigned a
    /// precision).
    pub fn set_policy(&mut self, policy: PrecisionPolicy) {
        self.policy = policy;
    }

    /// The live degradation level applied to [`PrecisionPolicy::Adaptive`]
    /// draws (0 = the full set).
    pub fn degrade_level(&self) -> u8 {
        self.degrade
    }

    /// Sets the degradation level for subsequent policy draws, clamped to
    /// the policy's [`PrecisionPolicy::max_degrade_level`]. Level changes
    /// never shift the seeded stream position (every draw costs one step at
    /// any level), so the schedule stays a pure function of the seed, the
    /// submission order and the level sequence. Non-adaptive policies
    /// ignore the level; under [`PolicyGranularity::PerBatch`] it applies
    /// to the per-chunk draws at flush time.
    pub fn set_degrade_level(&mut self, level: u8) {
        self.degrade = level.min(self.policy.max_degrade_level());
    }

    /// Aggregate serving statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Clears the serving statistics.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Number of submitted-but-unserved requests.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Borrows the backend (e.g. so an attack can craft inputs against the
    /// exact model being served).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Unwraps into the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Enqueues one `[C, H, W]` image; returns its request id.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not 3-D, or if its shape differs from the first
    /// submitted image (one engine serves one input geometry). Fallible
    /// callers (network front-ends) use [`Engine::try_submit`] instead.
    pub fn submit(&mut self, image: Tensor) -> RequestId {
        match self.try_submit(image) {
            Ok(id) => id,
            Err(e) => panic!("Engine::submit: {e}"),
        }
    }

    /// Fallible [`Engine::submit`]: rejects non-image and geometry-changing
    /// tensors with a [`SubmitError`] instead of panicking. The precision
    /// draw (under per-request granularity) happens only on acceptance, so
    /// rejected submissions never perturb the seeded schedule.
    pub fn try_submit(&mut self, image: Tensor) -> Result<RequestId, SubmitError> {
        self.try_submit_floored(image, None)
    }

    /// Like [`Engine::try_submit`], but bounds the policy draw below by a
    /// per-request precision `floor` (an SLO guarantee: the request never
    /// serves below it, however degraded the engine is). Only
    /// [`PrecisionPolicy::Adaptive`] honors floors; other policies draw as
    /// usual. The floored draw costs exactly one stream step, the same as
    /// an unfloored one.
    pub fn try_submit_floored(
        &mut self,
        image: Tensor,
        floor: Option<Precision>,
    ) -> Result<RequestId, SubmitError> {
        check_image(&mut self.image_shape, &image)?;
        let precision = draw_precision(
            &self.policy,
            &mut self.rng,
            self.cfg.granularity,
            self.degrade,
            floor,
        );
        Ok(self.enqueue(image, precision))
    }

    /// Like [`Engine::try_submit`], but pins the request to an explicit
    /// precision (`None` = full precision) instead of drawing from the
    /// policy. Pinned requests consume no draw from the seeded schedule.
    ///
    /// Only meaningful under [`PolicyGranularity::PerRequest`]; under
    /// `PerBatch` the pin is ignored (the whole batch draws one precision at
    /// flush time).
    pub fn try_submit_pinned(
        &mut self,
        image: Tensor,
        precision: Option<Precision>,
    ) -> Result<RequestId, SubmitError> {
        check_image(&mut self.image_shape, &image)?;
        let pinned = pin_precision(self.cfg.granularity, precision);
        Ok(self.enqueue(image, pinned))
    }

    fn enqueue(&mut self, image: Tensor, precision: Option<Option<Precision>>) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(Pending {
            id,
            precision,
            image,
        });
        id
    }

    /// Serves every pending request and returns responses sorted by request
    /// id (= submission order). The backend's caller-visible precision is
    /// restored afterwards, and the request images' storage returns to the
    /// engine's arena for the next burst.
    pub fn flush(&mut self) -> Vec<Response> {
        let saved = self.backend.precision();
        let mut pending = std::mem::take(&mut self.pending);
        let mut responses = Vec::with_capacity(pending.len());
        match self.cfg.granularity {
            PolicyGranularity::PerBatch => {
                for chunk in pending.chunks(self.cfg.max_batch) {
                    // Per-batch draws happen at flush, so degradation (with
                    // no per-request floor) applies here instead.
                    let p = self
                        .policy
                        .sample_degraded(&mut self.rng, self.degrade, None);
                    let refs: Vec<&Pending> = chunk.iter().collect();
                    self.run_chunk(&refs, p, &mut responses);
                }
            }
            PolicyGranularity::PerRequest => {
                let groups = group_by_precision(&pending, |req: &Pending| {
                    req.precision
                        .expect("per-request precision assigned at submit")
                });
                for (p, members) in groups {
                    for chunk in members.chunks(self.cfg.max_batch) {
                        self.run_chunk(chunk, p, &mut responses);
                    }
                }
            }
        }
        self.backend.set_precision(saved);
        // Reclaim the served images and the queue's own capacity.
        for req in pending.drain(..) {
            self.ws.recycle_tensor(req.image);
        }
        self.pending = pending;
        responses.sort_by_key(|r| r.id);
        responses
    }

    /// Convenience: submits every row of an `[N, C, H, W]` batch and
    /// flushes. Image staging copies draw from the engine's arena.
    pub fn serve(&mut self, x: &Tensor) -> Vec<Response> {
        assert_eq!(x.shape().len(), 4, "Engine::serve expects [N, C, H, W]");
        let (n, s) = (x.shape()[0], x.shape());
        let (img_shape, chw) = ([s[1], s[2], s[3]], s[1] * s[2] * s[3]);
        for i in 0..n {
            let mut img = self.ws.tensor_spare(&img_shape);
            img.data_mut()
                .copy_from_slice(&x.data()[i * chw..(i + 1) * chw]);
            self.submit(img);
        }
        self.flush()
    }

    // tia-lint: hot-path(begin)
    fn run_chunk(&mut self, chunk: &[&Pending], p: Option<Precision>, out: &mut Vec<Response>) {
        if chunk.is_empty() {
            return;
        }
        // One copy per image — straight into an arena-backed batch tensor
        // (submit pins images to rank 3, so the batch is always rank 4).
        let s = chunk[0].image.shape();
        let shape = [chunk.len(), s[0], s[1], s[2]];
        let mut x = self.ws.tensor_spare(&shape);
        for (i, r) in chunk.iter().enumerate() {
            x.set_axis0(i, &r.image);
        }
        let logits = self.backend.infer_batch(&x, p);
        self.ws.recycle_tensor(x);
        let top1 = argmax_rows(&logits);
        self.stats.requests += chunk.len();
        self.stats.batches += 1;
        let cost = self.backend.cost(chunk.len(), p);
        self.stats.cost.accumulate(&cost);
        for (i, req) in chunk.iter().enumerate() {
            out.push(Response {
                id: req.id,
                logits: logits.index_axis0(i),
                top1: top1[i],
                precision: p,
            });
        }
        // The batch logits have been split into per-request responses; the
        // backing storage goes back to the backend's arena.
        self.backend.recycle_output(logits);
    }
    // tia-lint: hot-path(end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_nn::zoo;
    use tia_quant::PrecisionSet;

    fn engine_with(policy: PrecisionPolicy, cfg: EngineConfig) -> Engine<tia_nn::Network> {
        let mut rng = SeededRng::new(1);
        let net = zoo::preact_resnet18_rps(3, 4, 3, PrecisionSet::range(4, 8), &mut rng);
        Engine::new(net, policy, cfg)
    }

    fn images(n: usize, seed: u64) -> Tensor {
        let mut rng = SeededRng::new(seed);
        Tensor::rand_uniform(&[n, 3, 8, 8], 0.0, 1.0, &mut rng)
    }

    #[test]
    fn responses_come_back_in_submission_order() {
        let mut eng = engine_with(
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
            EngineConfig::default().with_max_batch(4),
        );
        let x = images(10, 2);
        let ids: Vec<RequestId> = (0..10).map(|i| eng.submit(x.index_axis0(i))).collect();
        let resp = eng.flush();
        assert_eq!(resp.len(), 10);
        assert_eq!(resp.iter().map(|r| r.id).collect::<Vec<_>>(), ids);
    }

    #[test]
    fn fixed_policy_reports_its_precision() {
        let p = Some(Precision::new(6));
        let mut eng = engine_with(PrecisionPolicy::Fixed(p), EngineConfig::default());
        for r in eng.serve(&images(5, 3)) {
            assert_eq!(r.precision, p);
        }
        assert_eq!(eng.stats().requests, 5);
    }

    #[test]
    fn same_seed_same_precision_schedule() {
        let cfg = EngineConfig::default().with_seed(42);
        let set = PrecisionSet::range(4, 8);
        let x = images(16, 4);
        let sched = |cfg: EngineConfig| {
            let mut eng = engine_with(PrecisionPolicy::Random(set.clone()), cfg);
            eng.serve(&x)
                .iter()
                .map(|r| r.precision)
                .collect::<Vec<_>>()
        };
        assert_eq!(sched(cfg.clone()), sched(cfg));
        let other = sched(EngineConfig::default().with_seed(43));
        let base = sched(EngineConfig::default().with_seed(42));
        assert_ne!(
            base, other,
            "different seeds should give different schedules"
        );
    }

    #[test]
    fn per_batch_granularity_shares_precision_within_chunk() {
        let mut eng = engine_with(
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
            EngineConfig::default()
                .with_max_batch(4)
                .with_granularity(PolicyGranularity::PerBatch),
        );
        let resp = eng.serve(&images(8, 5));
        assert_eq!(
            resp[..4]
                .iter()
                .map(|r| r.precision)
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
        assert_eq!(
            resp[4..]
                .iter()
                .map(|r| r.precision)
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
        assert_eq!(eng.stats().batches, 2);
    }

    #[test]
    fn flush_restores_caller_visible_precision() {
        let mut eng = engine_with(
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
            EngineConfig::default(),
        );
        eng.backend_mut().set_precision(Some(Precision::new(8)));
        let _ = eng.serve(&images(6, 6));
        assert_eq!(eng.backend_mut().precision(), Some(Precision::new(8)));
    }

    #[test]
    fn stats_track_batches_and_requests() {
        let mut eng = engine_with(
            PrecisionPolicy::Fixed(Some(Precision::new(8))),
            EngineConfig::default().with_max_batch(3),
        );
        let _ = eng.serve(&images(7, 7));
        let s = eng.stats();
        assert_eq!(s.requests, 7);
        assert_eq!(s.batches, 3); // 3 + 3 + 1
        assert!((s.mean_batch() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.cost.frames, 7);
    }

    #[test]
    fn try_submit_reports_errors_without_panicking() {
        let mut eng = engine_with(
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
            EngineConfig::default(),
        );
        assert_eq!(
            eng.try_submit(Tensor::zeros(&[1, 3, 8, 8])),
            Err(SubmitError::NotAnImage { rank: 4 })
        );
        let id = eng.try_submit(Tensor::zeros(&[3, 8, 8])).unwrap();
        assert_eq!(id, 0);
        assert_eq!(
            eng.try_submit(Tensor::zeros(&[8, 3, 8])),
            Err(SubmitError::ShapeMismatch {
                expected: vec![3, 8, 8],
                got: vec![8, 3, 8],
            })
        );
        // Rejections consume no policy draw: a clean engine fed only the
        // accepted submissions reproduces the same schedule.
        let id2 = eng.try_submit(Tensor::zeros(&[3, 8, 8])).unwrap();
        assert_eq!(id2, 1);
        let got: Vec<_> = eng.flush().iter().map(|r| r.precision).collect();
        let mut clean = engine_with(
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
            EngineConfig::default(),
        );
        clean.submit(Tensor::zeros(&[3, 8, 8]));
        clean.submit(Tensor::zeros(&[3, 8, 8]));
        let want: Vec<_> = clean.flush().iter().map(|r| r.precision).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pinned_submissions_skip_the_policy_stream() {
        let mut eng = engine_with(
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
            EngineConfig::default().with_seed(3),
        );
        let pin = Some(Precision::new(5));
        eng.try_submit_pinned(Tensor::zeros(&[3, 8, 8]), pin)
            .unwrap();
        eng.submit(Tensor::zeros(&[3, 8, 8]));
        let resp = eng.flush();
        assert_eq!(resp[0].precision, pin);
        // The policy-driven request drew the *first* value of the stream —
        // the pin consumed none.
        let mut clean = engine_with(
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
            EngineConfig::default().with_seed(3),
        );
        clean.submit(Tensor::zeros(&[3, 8, 8]));
        assert_eq!(resp[1].precision, clean.flush()[0].precision);
    }

    #[test]
    fn degrade_level_shifts_values_not_stream_position() {
        let set = PrecisionSet::range(4, 8);
        let cfg = EngineConfig::default().with_seed(9);
        let mut deg = engine_with(PrecisionPolicy::Adaptive(set.clone()), cfg.clone());
        // Fully degraded the window is {4} alone, so the value is pinned
        // even though the draw still happens.
        deg.set_degrade_level(9); // clamps to the set's max useful level
        assert_eq!(deg.degrade_level(), 4);
        deg.submit(Tensor::zeros(&[3, 8, 8]));
        deg.submit(Tensor::zeros(&[3, 8, 8]));
        deg.set_degrade_level(0);
        deg.submit(Tensor::zeros(&[3, 8, 8]));
        let got: Vec<_> = deg.flush().iter().map(|r| r.precision).collect();
        assert_eq!(got[0], Some(Precision::new(4)));
        assert_eq!(got[1], Some(Precision::new(4)));
        // The recovered third draw sits at the same stream position as a
        // never-degraded engine's third draw.
        let mut clean = engine_with(PrecisionPolicy::Adaptive(set), cfg);
        for _ in 0..3 {
            clean.submit(Tensor::zeros(&[3, 8, 8]));
        }
        assert_eq!(got[2], clean.flush()[2].precision);
    }

    #[test]
    fn floored_submissions_never_serve_below_the_floor() {
        let mut eng = engine_with(
            PrecisionPolicy::Adaptive(PrecisionSet::range(4, 8)),
            EngineConfig::default().with_seed(12),
        );
        eng.set_degrade_level(4); // window {4} — but the floor wins
        for _ in 0..8 {
            eng.try_submit_floored(Tensor::zeros(&[3, 8, 8]), Some(Precision::new(6)))
                .unwrap();
        }
        for r in eng.flush() {
            assert!(r.precision.unwrap().bits() >= 6, "served below the floor");
        }
    }

    #[test]
    fn workspace_cap_reaches_the_engine_arena() {
        let cfg = EngineConfig::default().with_workspace_cap(2);
        assert_eq!(cfg.workspace_cap, 2);
        let mut eng = engine_with(PrecisionPolicy::Fixed(None), cfg);
        // Serve a burst larger than the cap: the engine recycles every
        // request image, but the arena must stay bounded at the cap.
        let _ = eng.serve(&images(6, 11));
        assert!(eng.ws.pooled() <= 2);
    }

    #[test]
    #[should_panic(expected = "single [C, H, W] image")]
    fn submit_rejects_batched_input() {
        let mut eng = engine_with(PrecisionPolicy::Fixed(None), EngineConfig::default());
        eng.submit(Tensor::zeros(&[1, 3, 8, 8]));
    }

    #[test]
    #[should_panic(expected = "image shape changed mid-stream")]
    fn submit_rejects_mixed_shapes() {
        // Same element count, different layout — would silently corrupt the
        // coalesced batch if accepted.
        let mut eng = engine_with(PrecisionPolicy::Fixed(None), EngineConfig::default());
        eng.submit(Tensor::zeros(&[3, 8, 8]));
        eng.submit(Tensor::zeros(&[8, 3, 8]));
    }
}
