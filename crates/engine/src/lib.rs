//! # tia-engine
//!
//! The unified inference surface of the 2-in-1 Accelerator reproduction:
//! one batched, policy-driven serving layer that everything else — attacks,
//! robust evaluation, benchmarks, example workloads — sits on.
//!
//! The paper's defender *deploys* Random Precision Switch: it serves
//! traffic while sampling a precision per query (Alg. 1, §4.2), and the
//! hardware half prices every precision choice in cycles and energy
//! (§3–§4). This crate makes that deployment story first-class:
//!
//! * [`Backend`] — a batched, precision-switchable executor with a
//!   [`Backend::cost`] pricing hook. Implemented by `tia_nn::Network` (the
//!   software path) and by [`SimBacked`], which co-simulates every served
//!   batch through [`tia_sim::Accelerator`] to report cycles/energy/FPS
//!   alongside logits.
//! * [`PrecisionPolicy`] — fixed or RPS precision selection (absorbing the
//!   old `InferencePolicy` of `tia-core`), sampled per request or per batch
//!   ([`PolicyGranularity`]).
//! * [`Engine`] — a micro-batching request queue: submit single-image
//!   requests, the engine coalesces them into batches of at most
//!   `max_batch`, samples the policy, and returns responses in submission
//!   order with seeded-deterministic precision schedules.
//! * [`ShardedEngine`] — the multi-threaded runtime: N worker shards
//!   (plain `std::thread`), each with its own backend replica and seeded
//!   RNG stream, behind the same submit/flush/serve surface. Under
//!   per-request granularity, results — logits, precision schedule and the
//!   merged cost ledger — are identical for *any* worker count (see the
//!   [`sharded`](crate::ShardedEngine) determinism contract).
//!
//! Because every layer calibrates its quantizers per sample (and the tiled
//! GEMM in `tia-tensor` accumulates in a batch-size-invariant order),
//! engine logits are **bitwise identical** to per-sample `Network::forward`
//! at every precision — batching and sharding are pure throughput wins.
//!
//! # Example
//!
//! ```
//! use tia_engine::{Engine, EngineConfig, PrecisionPolicy};
//! use tia_nn::zoo;
//! use tia_quant::PrecisionSet;
//! use tia_tensor::{SeededRng, Tensor};
//!
//! let mut rng = SeededRng::new(0);
//! let set = PrecisionSet::range(4, 8);
//! let net = zoo::preact_resnet18_rps(3, 4, 10, set.clone(), &mut rng);
//!
//! // Serve 6 requests through the RPS policy in micro-batches of 4.
//! let cfg = EngineConfig::default().with_max_batch(4).with_seed(7);
//! let mut engine = Engine::new(net, PrecisionPolicy::Random(set), cfg);
//! let x = Tensor::rand_uniform(&[6, 3, 8, 8], 0.0, 1.0, &mut rng);
//! let responses = engine.serve(&x);
//! assert_eq!(responses.len(), 6);
//! assert!(responses.iter().all(|r| r.precision.is_some()));
//! assert_eq!(engine.stats().requests, 6);
//! ```
//!
//! To scale the same traffic across threads, hand [`ShardedEngine`] one
//! replica per worker (see its type-level example).

#![deny(missing_docs)]

mod backend;
mod cost;
mod engine;
mod policy;
mod sharded;
mod sim_backed;

pub use backend::{Backend, LossKind};
pub use cost::BatchCost;
pub use engine::{
    Engine, EngineConfig, EngineStats, PolicyGranularity, RequestId, Response, SubmitError,
};
pub use policy::PrecisionPolicy;
pub use sharded::ShardedEngine;
pub use sim_backed::SimBacked;
