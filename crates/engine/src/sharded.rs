//! The sharded, multi-threaded serving runtime.
//!
//! [`ShardedEngine`] scales the micro-batching [`crate::Engine`] across N
//! worker *shards*: plain `std::thread` workers, each owning its own
//! [`Backend`] replica and its own seeded RNG stream. The coordinator
//! assigns every request a shard and (under per-request granularity) a
//! precision at submit time, so the entire schedule is a pure function of
//! the config seed and the submission order — thread interleaving can
//! change *when* a shard runs, never *what* it computes.
//!
//! # Determinism contract
//!
//! Under [`PolicyGranularity::PerRequest`] (the default, the paper's RPS
//! inference) serving is reproducible across **worker counts**: the same
//! seed and the same submission sequence yield bitwise-identical logits,
//! the identical precision schedule, and the identical merged cost ledger
//! for 1, 2 or 8 workers. Three properties make this hold:
//!
//! 1. precisions are drawn from the coordinator's RNG at submit time, in
//!    submission order — the same stream a single-threaded [`crate::Engine`]
//!    with the same seed would draw;
//! 2. the layer stack (and the tiled GEMM underneath it) is batch-size
//!    invariant, so how a shard groups its requests into micro-batches
//!    cannot change any logit bit;
//! 3. the merged ledger accumulates per-request unit costs in request-id
//!    order at flush time, not in shard completion order.
//!
//! Under [`PolicyGranularity::PerBatch`] each shard draws from its own
//! seeded stream, so a run is reproducible for a *fixed* worker count
//! (regardless of thread interleaving) but batch composition — and hence
//! the schedule — legitimately changes with the shard count.

use crate::{
    Backend, BatchCost, EngineConfig, EngineStats, PolicyGranularity, PrecisionPolicy, RequestId,
    Response, SubmitError,
};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use tia_quant::Precision;
use tia_tensor::{argmax_rows, SeededRng, Tensor, Workspace};

/// A request as handed to a shard: id, centrally assigned precision (under
/// per-request granularity) and the image.
struct ShardRequest {
    id: RequestId,
    /// `Some(p)` = assigned by the coordinator at submit; `None` = the shard
    /// samples per batch from its own stream.
    precision: Option<Option<Precision>>,
    image: Tensor,
}

/// One completed request plus its per-frame cost, as reported by a shard.
struct ShardResponse {
    id: RequestId,
    logits: Tensor,
    top1: usize,
    precision: Option<Precision>,
    unit_cost: BatchCost,
}

/// A shard's answer to one flush: its responses and how many micro-batches
/// it executed.
struct ShardReply {
    responses: Vec<ShardResponse>,
    batches: usize,
}

type Job = Vec<ShardRequest>;

/// A sharded, multi-threaded inference server over any [`Backend`].
///
/// The coordinator partitions submitted requests across worker shards by
/// `request_id % workers` (deterministic round-robin); each shard groups its
/// requests by precision, coalesces them into micro-batches of at most
/// `max_batch`, executes them on its own backend replica, and reports
/// responses plus per-frame costs back. [`ShardedEngine::flush`] merges
/// everything in submission order.
///
/// Replicas must be *identical* (same weights, same cost model) for the
/// determinism contract to hold — build them from the same constructor with
/// the same seed, as [`ShardedEngine::with_factory`] encourages.
///
/// # Example
///
/// ```
/// use tia_engine::{EngineConfig, PrecisionPolicy, ShardedEngine};
/// use tia_nn::zoo;
/// use tia_quant::PrecisionSet;
/// use tia_tensor::{SeededRng, Tensor};
///
/// let set = PrecisionSet::range(4, 8);
/// // Four identical replicas: same constructor, same seed.
/// let mut engine = ShardedEngine::with_factory(
///     4,
///     |_| zoo::preact_resnet18_rps(3, 4, 10, PrecisionSet::range(4, 8), &mut SeededRng::new(1)),
///     PrecisionPolicy::Random(set),
///     EngineConfig::default().with_max_batch(8).with_seed(7),
/// );
/// let mut rng = SeededRng::new(2);
/// let x = Tensor::rand_uniform(&[12, 3, 8, 8], 0.0, 1.0, &mut rng);
/// let responses = engine.serve(&x);
/// assert_eq!(responses.len(), 12);
/// assert_eq!(engine.stats().requests, 12);
/// let _replicas = engine.shutdown();
/// ```
pub struct ShardedEngine<B: Backend + Send + 'static> {
    policy: PrecisionPolicy,
    cfg: EngineConfig,
    /// The coordinator's policy stream (per-request assignment).
    rng: SeededRng,
    /// Live degradation level for Adaptive policy draws (0 = full set).
    /// Applies to coordinator submit-time draws; per-batch shard draws
    /// ignore it (shards cannot see level changes deterministically).
    degrade: u8,
    pending: Vec<ShardRequest>,
    next_id: RequestId,
    stats: EngineStats,
    /// Completed non-empty flush cycles; tags the flight recorder's
    /// per-cycle engine spans.
    cycles: u64,
    image_shape: Option<Vec<usize>>,
    senders: Vec<Sender<Job>>,
    results_rx: Receiver<ShardReply>,
    handles: Vec<JoinHandle<B>>,
}

impl<B: Backend + Send + 'static> ShardedEngine<B> {
    /// Spawns one worker thread per replica and returns the coordinator.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<B>, policy: PrecisionPolicy, cfg: EngineConfig) -> Self {
        assert!(
            !replicas.is_empty(),
            "ShardedEngine needs at least one replica"
        );
        let (results_tx, results_rx) = channel();
        let mut senders = Vec::with_capacity(replicas.len());
        let mut handles = Vec::with_capacity(replicas.len());
        for (shard, backend) in replicas.into_iter().enumerate() {
            let (tx, rx) = channel::<Job>();
            let results = results_tx.clone();
            let worker_policy = policy.clone();
            // Each shard gets its own decorrelated stream: golden-ratio
            // stepping of the base seed, the same trick SplitMix64 uses.
            let rng = SeededRng::new(
                cfg.seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1)),
            );
            let worker_cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(backend, worker_policy, rng, worker_cfg, rx, results)
            }));
            senders.push(tx);
        }
        Self {
            policy,
            rng: SeededRng::new(cfg.seed),
            cfg,
            degrade: 0,
            pending: Vec::new(),
            next_id: 0,
            stats: EngineStats::default(),
            cycles: 0,
            image_shape: None,
            senders,
            results_rx,
            handles,
        }
    }

    /// Builds `workers` replicas from a factory (called with the shard
    /// index) and spawns the runtime. The factory must produce *identical*
    /// backends — reconstruct from the same seed rather than splitting one
    /// RNG across calls.
    pub fn with_factory(
        workers: usize,
        mut factory: impl FnMut(usize) -> B,
        policy: PrecisionPolicy,
        cfg: EngineConfig,
    ) -> Self {
        Self::new((0..workers).map(&mut factory).collect(), policy, cfg)
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// The active policy.
    pub fn policy(&self) -> &PrecisionPolicy {
        &self.policy
    }

    /// The live degradation level applied to [`PrecisionPolicy::Adaptive`]
    /// draws (0 = the full set).
    pub fn degrade_level(&self) -> u8 {
        self.degrade
    }

    /// Sets the degradation level for subsequent coordinator draws,
    /// clamped to the policy's [`PrecisionPolicy::max_degrade_level`].
    /// Level changes never shift the coordinator's stream position (every
    /// draw costs one step at any level), so the sharded determinism
    /// contract — same seed, same submission order, same level sequence ⇒
    /// same schedule at any worker count — is preserved.
    pub fn set_degrade_level(&mut self, level: u8) {
        self.degrade = level.min(self.policy.max_degrade_level());
    }

    /// Merged serving statistics across all shards (cost accumulated in
    /// request-id order, so totals are identical for any worker count under
    /// per-request granularity).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Clears the merged serving statistics.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Number of submitted-but-unserved requests.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Number of completed non-empty [`ShardedEngine::flush`] cycles
    /// (monotonic; survives [`ShardedEngine::reset_stats`]). The serving
    /// layer's flight recorder uses it to label per-cycle engine spans.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Enqueues one `[C, H, W]` image; returns its request id.
    ///
    /// Under per-request granularity the precision is drawn here, from the
    /// coordinator's stream — the schedule is fixed at submit time.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not 3-D, or if its shape differs from the first
    /// submitted image (one engine serves one input geometry). Fallible
    /// callers (network front-ends) use [`ShardedEngine::try_submit`].
    pub fn submit(&mut self, image: Tensor) -> RequestId {
        match self.try_submit(image) {
            Ok(id) => id,
            Err(e) => panic!("ShardedEngine::submit: {e}"),
        }
    }

    /// Fallible [`ShardedEngine::submit`]: rejects non-image and
    /// geometry-changing tensors with a [`SubmitError`] instead of
    /// panicking. The precision draw (under per-request granularity)
    /// happens only on acceptance, so rejected submissions never perturb
    /// the seeded schedule.
    pub fn try_submit(&mut self, image: Tensor) -> Result<RequestId, SubmitError> {
        self.try_submit_floored(image, None)
    }

    /// Like [`ShardedEngine::try_submit`], but bounds the policy draw
    /// below by a per-request precision `floor` (an SLO guarantee: the
    /// request never serves below it, however degraded the engine is).
    /// Only [`PrecisionPolicy::Adaptive`] honors floors; other policies
    /// draw as usual. The floored draw costs exactly one stream step, the
    /// same as an unfloored one.
    pub fn try_submit_floored(
        &mut self,
        image: Tensor,
        floor: Option<Precision>,
    ) -> Result<RequestId, SubmitError> {
        crate::engine::check_image(&mut self.image_shape, &image)?;
        let precision = crate::engine::draw_precision(
            &self.policy,
            &mut self.rng,
            self.cfg.granularity,
            self.degrade,
            floor,
        );
        Ok(self.enqueue(image, precision))
    }

    /// Like [`ShardedEngine::try_submit`], but pins the request to an
    /// explicit precision (`None` = full precision) instead of drawing from
    /// the policy. Pinned requests consume no draw from the seeded
    /// schedule, so a stream mixing policy and pinned submissions is still
    /// a pure function of the seed and the submission sequence.
    ///
    /// Only meaningful under [`PolicyGranularity::PerRequest`]; under
    /// `PerBatch` the pin is ignored (each shard draws one precision per
    /// coalesced batch at flush time).
    pub fn try_submit_pinned(
        &mut self,
        image: Tensor,
        precision: Option<Precision>,
    ) -> Result<RequestId, SubmitError> {
        crate::engine::check_image(&mut self.image_shape, &image)?;
        let pinned = crate::engine::pin_precision(self.cfg.granularity, precision);
        Ok(self.enqueue(image, pinned))
    }

    fn enqueue(&mut self, image: Tensor, precision: Option<Option<Precision>>) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(ShardRequest {
            id,
            precision,
            image,
        });
        id
    }

    /// Serves every pending request across the shards and returns responses
    /// sorted by request id (= submission order).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread has died (a backend panicked mid-batch).
    pub fn flush(&mut self) -> Vec<Response> {
        let pending = std::mem::take(&mut self.pending);
        let total = pending.len();
        if total == 0 {
            return Vec::new();
        }
        let workers = self.senders.len();
        let mut per_shard: Vec<Job> = (0..workers).map(|_| Vec::new()).collect();
        for req in pending {
            per_shard[(req.id % workers as u64) as usize].push(req);
        }
        let mut outstanding = 0;
        for (shard, job) in per_shard.into_iter().enumerate() {
            if job.is_empty() {
                continue;
            }
            self.senders[shard]
                .send(job)
                .expect("sharded engine worker thread died");
            outstanding += 1;
        }
        let mut all: Vec<ShardResponse> = Vec::with_capacity(total);
        for _ in 0..outstanding {
            let reply = self
                .results_rx
                .recv()
                .expect("sharded engine worker thread died");
            self.stats.batches += reply.batches;
            all.extend(reply.responses);
        }
        // Merge in submission order: response order and the ledger's
        // floating-point accumulation order are both independent of which
        // shard finished first.
        all.sort_by_key(|r| r.id);
        self.cycles += 1;
        self.stats.requests += total;
        for r in &all {
            self.stats.cost.accumulate(&r.unit_cost);
        }
        all.into_iter()
            .map(|r| Response {
                id: r.id,
                logits: r.logits,
                top1: r.top1,
                precision: r.precision,
            })
            .collect()
    }

    /// Convenience: submits every row of an `[N, C, H, W]` batch and
    /// flushes.
    pub fn serve(&mut self, x: &Tensor) -> Vec<Response> {
        assert_eq!(
            x.shape().len(),
            4,
            "ShardedEngine::serve expects [N, C, H, W]"
        );
        for i in 0..x.shape()[0] {
            self.submit(x.index_axis0(i));
        }
        self.flush()
    }

    /// Shuts the runtime down and returns the backend replicas (shard
    /// order), e.g. to inspect per-shard `SimBacked` ledgers.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn shutdown(mut self) -> Vec<B> {
        self.senders.clear(); // Closing the channels ends the worker loops.
        std::mem::take(&mut self.handles)
            .into_iter()
            .map(|h| h.join().expect("sharded engine worker panicked"))
            .collect()
    }
}

impl<B: Backend + Send + 'static> Drop for ShardedEngine<B> {
    fn drop(&mut self) {
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The shard body: receive request lists until the coordinator hangs up,
/// group/batch/execute each, reply with responses + per-frame costs. Returns
/// the backend so `shutdown` can hand the replicas back.
fn worker_loop<B: Backend>(
    mut backend: B,
    policy: PrecisionPolicy,
    mut rng: SeededRng,
    cfg: EngineConfig,
    jobs: Receiver<Job>,
    results: Sender<ShardReply>,
) -> B {
    let (max_batch, granularity) = (cfg.max_batch, cfg.granularity);
    backend.set_kernel(cfg.kernel);
    // Each shard owns its scratch arena: batch assembly reuses the same
    // buffers flush after flush with no cross-thread sharing.
    let mut ws = Workspace::with_max_pooled(cfg.workspace_cap);
    while let Ok(reqs) = jobs.recv() {
        let saved = backend.precision();
        let mut responses = Vec::with_capacity(reqs.len());
        let mut batches = 0;
        match granularity {
            PolicyGranularity::PerBatch => {
                for chunk in reqs.chunks(max_batch) {
                    let p = policy.sample(&mut rng);
                    run_chunk(&mut backend, chunk, p, &mut responses, &mut ws);
                    batches += 1;
                }
            }
            PolicyGranularity::PerRequest => {
                // The exact grouping Engine::flush uses — sharing it is what
                // keeps shard batching identical to single-threaded batching.
                let groups = crate::engine::group_by_precision(&reqs, |req: &ShardRequest| {
                    req.precision
                        .expect("per-request precision assigned at submit")
                });
                for (p, members) in groups {
                    for chunk in members.chunks(max_batch) {
                        run_chunk(&mut backend, chunk, p, &mut responses, &mut ws);
                        batches += 1;
                    }
                }
            }
        }
        backend.set_precision(saved);
        // Request images crossed the channel; reclaim their storage for the
        // shard's next batch tensors.
        for req in reqs {
            ws.recycle_tensor(req.image);
        }
        if results.send(ShardReply { responses, batches }).is_err() {
            break; // Coordinator dropped mid-flush; shut down.
        }
    }
    backend
}

/// Executes one micro-batch on a shard's backend, pricing each request at
/// its per-frame cost so the coordinator can merge ledgers in id order.
fn run_chunk<B: Backend, R: std::borrow::Borrow<ShardRequest>>(
    backend: &mut B,
    chunk: &[R],
    p: Option<Precision>,
    out: &mut Vec<ShardResponse>,
    ws: &mut Workspace,
) {
    if chunk.is_empty() {
        return;
    }
    let s = chunk[0].borrow().image.shape();
    let shape = [chunk.len(), s[0], s[1], s[2]];
    let mut x = ws.tensor_spare(&shape);
    for (i, r) in chunk.iter().enumerate() {
        x.set_axis0(i, &r.borrow().image);
    }
    let logits = backend.infer_batch(&x, p);
    ws.recycle_tensor(x);
    let top1 = argmax_rows(&logits);
    let unit_cost = backend.cost(1, p);
    for (i, req) in chunk.iter().enumerate() {
        out.push(ShardResponse {
            id: req.borrow().id,
            logits: logits.index_axis0(i),
            top1: top1[i],
            precision: p,
            unit_cost,
        });
    }
    backend.recycle_output(logits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_nn::zoo;
    use tia_quant::PrecisionSet;

    fn replica() -> tia_nn::Network {
        let mut rng = SeededRng::new(1);
        zoo::preact_resnet18_rps(3, 4, 3, PrecisionSet::range(4, 8), &mut rng)
    }

    fn images(n: usize, seed: u64) -> Tensor {
        let mut rng = SeededRng::new(seed);
        Tensor::rand_uniform(&[n, 3, 8, 8], 0.0, 1.0, &mut rng)
    }

    fn sharded(workers: usize, seed: u64) -> ShardedEngine<tia_nn::Network> {
        ShardedEngine::with_factory(
            workers,
            |_| replica(),
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
            EngineConfig::default().with_max_batch(4).with_seed(seed),
        )
    }

    #[test]
    fn responses_come_back_in_submission_order() {
        let mut eng = sharded(3, 7);
        let x = images(10, 2);
        let ids: Vec<RequestId> = (0..10).map(|i| eng.submit(x.index_axis0(i))).collect();
        let resp = eng.flush();
        assert_eq!(resp.iter().map(|r| r.id).collect::<Vec<_>>(), ids);
    }

    #[test]
    fn precision_schedule_matches_single_threaded_engine() {
        // The coordinator draws from the same stream a single-threaded
        // Engine with the same seed would, so the schedules coincide.
        let x = images(12, 3);
        let cfg = EngineConfig::default().with_max_batch(4).with_seed(11);
        let mut single = crate::Engine::new(
            replica(),
            PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
            cfg.clone(),
        );
        let want: Vec<_> = single.serve(&x).iter().map(|r| r.precision).collect();
        for workers in [1usize, 2, 5] {
            let mut eng = ShardedEngine::with_factory(
                workers,
                |_| replica(),
                PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
                cfg.clone(),
            );
            let got: Vec<_> = eng.serve(&x).iter().map(|r| r.precision).collect();
            assert_eq!(got, want, "schedule diverged at {} workers", workers);
        }
    }

    #[test]
    fn degraded_schedule_matches_single_threaded_engine() {
        // The same level/floor sequence applied to the coordinator and a
        // single-threaded engine yields the same schedule — degradation is
        // part of the determinism contract, not an exception to it.
        let x = images(9, 8);
        let cfg = EngineConfig::default().with_max_batch(4).with_seed(21);
        let policy = || PrecisionPolicy::Adaptive(PrecisionSet::range(4, 8));
        let floor = Some(Precision::new(6));
        let mut single = crate::Engine::new(replica(), policy(), cfg.clone());
        let mut want = Vec::new();
        for i in 0..9 {
            single.set_degrade_level((i / 3) as u8);
            single
                .try_submit_floored(x.index_axis0(i), if i % 2 == 0 { floor } else { None })
                .unwrap();
        }
        want.extend(single.flush().iter().map(|r| r.precision));
        for workers in [1usize, 3] {
            let mut eng =
                ShardedEngine::with_factory(workers, |_| replica(), policy(), cfg.clone());
            for i in 0..9 {
                eng.set_degrade_level((i / 3) as u8);
                eng.try_submit_floored(x.index_axis0(i), if i % 2 == 0 { floor } else { None })
                    .unwrap();
            }
            let got: Vec<_> = eng.flush().iter().map(|r| r.precision).collect();
            assert_eq!(got, want, "degraded schedule diverged at {workers} workers");
        }
        for p in &want {
            assert!(p.unwrap().bits() >= 4);
        }
        // Floored draws honored the floor.
        for (i, p) in want.iter().enumerate() {
            if i % 2 == 0 {
                assert!(p.unwrap().bits() >= 6, "floored draw {i} below floor");
            }
        }
    }

    #[test]
    fn worker_counts_agree_bitwise() {
        let x = images(9, 4);
        let logits = |workers: usize| {
            let mut eng = sharded(workers, 5);
            eng.serve(&x)
                .iter()
                .flat_map(|r| {
                    r.logits
                        .data()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<u32>>()
        };
        let one = logits(1);
        assert_eq!(one, logits(2));
        assert_eq!(one, logits(4));
    }

    #[test]
    fn stats_merge_across_shards() {
        let mut eng = sharded(4, 6);
        assert_eq!(eng.cycles(), 0);
        let _ = eng.flush(); // empty flush: no cycle
        assert_eq!(eng.cycles(), 0);
        let _ = eng.serve(&images(10, 7));
        let s = eng.stats();
        assert_eq!(s.requests, 10);
        assert!(s.batches >= 1);
        assert_eq!(s.cost.frames, 10);
        assert_eq!(eng.cycles(), 1);
        eng.reset_stats();
        assert_eq!(eng.cycles(), 1, "cycles survive reset_stats");
    }

    #[test]
    fn shutdown_returns_all_replicas() {
        let eng = sharded(3, 8);
        let replicas = eng.shutdown();
        assert_eq!(replicas.len(), 3);
    }

    #[test]
    fn per_batch_granularity_is_reproducible_per_worker_count() {
        let x = images(8, 9);
        let run = || {
            let mut eng = ShardedEngine::with_factory(
                2,
                |_| replica(),
                PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
                EngineConfig::default()
                    .with_max_batch(4)
                    .with_seed(3)
                    .with_granularity(PolicyGranularity::PerBatch),
            );
            eng.serve(&x)
                .iter()
                .map(|r| r.precision)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = ShardedEngine::<tia_nn::Network>::new(
            Vec::new(),
            PrecisionPolicy::Fixed(None),
            EngineConfig::default(),
        );
    }
}
