//! Aggregated network-level performance reports.

use tia_accel::PrecisionPair;
use tia_dataflow::PerfReport;

/// Performance of one network at one precision on one accelerator.
#[derive(Debug, Clone)]
pub struct NetworkPerf {
    /// Accelerator name.
    pub accelerator: String,
    /// Network name.
    pub network: String,
    /// Execution precision.
    pub precision: PrecisionPair,
    /// Total cycles for one inference (batch 1).
    pub total_cycles: f64,
    /// Pure compute cycles.
    pub compute_cycles: f64,
    /// Frames per second at the configured clock.
    pub fps: f64,
    /// Energy per inference split by level `[DRAM, SRAM, NoC, RF]`.
    pub mem_energy: [f64; 4],
    /// MAC energy per inference.
    pub mac_energy: f64,
}

impl NetworkPerf {
    /// Aggregates per-layer reports.
    pub fn from_layers(
        accelerator: impl Into<String>,
        network: impl Into<String>,
        precision: PrecisionPair,
        freq_ghz: f64,
        layers: &[PerfReport],
    ) -> Self {
        let total_cycles: f64 = layers.iter().map(|l| l.total_cycles).sum();
        let compute_cycles: f64 = layers.iter().map(|l| l.compute_cycles).sum();
        let mut mem_energy = [0.0f64; 4];
        for l in layers {
            for (acc, &e) in mem_energy.iter_mut().zip(&l.mem_energy) {
                *acc += e;
            }
        }
        let mac_energy = layers.iter().map(|l| l.mac_energy).sum();
        Self {
            accelerator: accelerator.into(),
            network: network.into(),
            precision,
            total_cycles,
            compute_cycles,
            fps: freq_ghz * 1e9 / total_cycles.max(1.0),
            mem_energy,
            mac_energy,
        }
    }

    /// Total energy per inference.
    pub fn total_energy(&self) -> f64 {
        self.mem_energy.iter().sum::<f64>() + self.mac_energy
    }

    /// Energy efficiency: inferences per unit energy.
    pub fn energy_efficiency(&self) -> f64 {
        1.0 / self.total_energy().max(f64::MIN_POSITIVE)
    }

    /// Fraction of cycles lost to memory stalls.
    pub fn stall_fraction(&self) -> f64 {
        (self.total_cycles - self.compute_cycles).max(0.0) / self.total_cycles.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_layer(cycles: f64) -> PerfReport {
        PerfReport {
            total_cycles: cycles,
            compute_cycles: cycles * 0.8,
            stall_cycles: cycles * 0.2,
            bits_moved: [1.0; 4],
            mem_energy: [4.0, 2.0, 1.0, 1.0],
            mac_energy: 2.0,
            utilization: 1.0,
        }
    }

    #[test]
    fn aggregation_sums_layers() {
        let p = NetworkPerf::from_layers(
            "A",
            "N",
            PrecisionPair::symmetric(8),
            1.0,
            &[fake_layer(100.0), fake_layer(300.0)],
        );
        assert_eq!(p.total_cycles, 400.0);
        assert_eq!(p.mem_energy, [8.0, 4.0, 2.0, 2.0]);
        assert_eq!(p.mac_energy, 4.0);
        assert!((p.total_energy() - 20.0).abs() < 1e-9);
        assert!((p.fps - 2.5e6).abs() < 1.0);
        assert!((p.stall_fraction() - 0.2).abs() < 1e-9);
    }
}
