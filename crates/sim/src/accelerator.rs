//! Ready-made accelerator instances and the network-level simulation loop.

use crate::report::NetworkPerf;
use std::collections::HashMap;
use tia_accel::{MacKind, PrecisionPair};
use tia_dataflow::{ArchConfig, EvoSearch, PerfReport, SearchMode, Workload};
use tia_nn::workload::{LayerSpec, NetworkSpec};
use tia_quant::PrecisionSet;
use tia_tensor::SeededRng;

/// A simulated accelerator: architecture + dataflow optimizer + result
/// cache.
///
/// Layer results are memoized on `(layer, precision)` so sweeps over many
/// precisions and networks stay fast; the cache key includes everything that
/// affects the prediction.
#[derive(Debug)]
pub struct Accelerator {
    name: String,
    arch: ArchConfig,
    search: EvoSearch,
    seed: u64,
    cache: HashMap<(LayerSpec, u8, u8), PerfReport>,
}

impl Accelerator {
    /// The paper's 2-in-1 Accelerator: spatial-temporal MAC unit (Opt-1 +
    /// Opt-2), full evolutionary dataflow optimization.
    pub fn ours() -> Self {
        Self::with_kind("Ours", MacKind::spatial_temporal(), SearchMode::Full)
    }

    /// Stripes baseline: bit-serial units; the paper optimizes its dataflow
    /// with the same optimizer ("we ... optimize its dataflow with our
    /// automated optimizer", §4.1.2).
    pub fn stripes() -> Self {
        Self::with_kind("Stripes", MacKind::Temporal, SearchMode::Full)
    }

    /// Bit Fusion baseline: spatial units; its published dataflow tool only
    /// explores the global-buffer loop order (§3.1.3).
    pub fn bitfusion() -> Self {
        Self::with_kind("Bit Fusion", MacKind::Spatial, SearchMode::GbOrderOnly)
    }

    /// An ablation instance of the proposed design with chosen shift-add
    /// optimizations.
    pub fn ours_ablation(opt1: bool, opt2: bool) -> Self {
        Self::with_kind(
            &format!("Ours(opt1={},opt2={})", opt1, opt2),
            MacKind::SpatialTemporal { opt1, opt2 },
            SearchMode::Full,
        )
    }

    /// Builds an accelerator under the paper's shared area budget.
    pub fn with_kind(name: &str, kind: MacKind, mode: SearchMode) -> Self {
        Self {
            name: name.into(),
            arch: ArchConfig::paper_budget(kind),
            search: EvoSearch::default().with_mode(mode),
            seed: 0xACCE1,
            cache: HashMap::new(),
        }
    }

    /// Overrides the architecture (micro-architecture search results, test
    /// rigs). Clears the cache.
    pub fn with_arch(mut self, arch: ArchConfig) -> Self {
        self.arch = arch;
        self.cache.clear();
        self
    }

    /// Uses a lighter/heavier dataflow search. Clears the cache.
    pub fn with_search(mut self, search: EvoSearch) -> Self {
        self.search = search;
        self.cache.clear();
        self
    }

    /// Accelerator display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Architecture config.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Simulates one layer at a precision (dataflow optimized, memoized).
    pub fn simulate_layer(&mut self, layer: &LayerSpec, p: PrecisionPair) -> PerfReport {
        let key = (layer.clone(), p.w, p.a);
        if let Some(hit) = self.cache.get(&key) {
            return *hit;
        }
        let wl = Workload::new(layer, p);
        // Deterministic per-layer seed so results don't depend on call order.
        let mut rng = SeededRng::new(self.seed ^ hash_key(&key));
        let result = self.search.run(&self.arch, &wl, &mut rng);
        self.cache.insert(key, result.perf);
        result.perf
    }

    /// Simulates a whole network at one precision.
    pub fn simulate_network(&mut self, net: &NetworkSpec, p: PrecisionPair) -> NetworkPerf {
        let layers: Vec<PerfReport> = net
            .layers
            .iter()
            .map(|l| self.simulate_layer(l, p))
            .collect();
        NetworkPerf::from_layers(
            self.name.clone(),
            net.name.clone(),
            p,
            self.arch.freq_ghz,
            &layers,
        )
    }

    /// Mean FPS and energy over a precision set — the cost of RPS inference,
    /// which switches uniformly within the set (Fig. 11, §4.3.2).
    pub fn average_over_set(&mut self, net: &NetworkSpec, set: &PrecisionSet) -> (f64, f64) {
        let mut fps = 0.0;
        let mut energy = 0.0;
        for p in set.iter() {
            let perf = self.simulate_network(net, PrecisionPair::symmetric(p.bits()));
            fps += perf.fps;
            energy += perf.total_energy();
        }
        let n = set.len() as f64;
        (fps / n, energy / n)
    }
}

fn hash_key(key: &(LayerSpec, u8, u8)) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_search() -> EvoSearch {
        EvoSearch {
            population: 12,
            cycles: 4,
            mode: SearchMode::Full,
        }
    }

    #[test]
    fn ours_beats_bitfusion_at_4bit_resnet18() {
        let net = NetworkSpec::resnet18_cifar();
        let p = PrecisionPair::symmetric(4);
        let mut ours = Accelerator::ours().with_search(small_search());
        let mut bf = Accelerator::bitfusion();
        let po = ours.simulate_network(&net, p);
        let pb = bf.simulate_network(&net, p);
        assert!(
            po.fps > pb.fps,
            "ours {} FPS should beat Bit Fusion {} FPS at 4-bit",
            po.fps,
            pb.fps
        );
        assert!(po.total_energy() < pb.total_energy());
    }

    #[test]
    fn bitfusion_beats_stripes_below_8bit_and_loses_at_16() {
        // The Fig. 2 bottleneck: spatial wins at low precision, temporal
        // scales past 8-bit.
        let net = NetworkSpec::alexnet();
        let mut bf = Accelerator::bitfusion();
        let mut st = Accelerator::stripes().with_search(small_search());
        let bf4 = bf.simulate_network(&net, PrecisionPair::symmetric(4));
        let st4 = st.simulate_network(&net, PrecisionPair::symmetric(4));
        assert!(
            bf4.fps > st4.fps,
            "BF should win at 4-bit: {} vs {}",
            bf4.fps,
            st4.fps
        );
        let bf16 = bf.simulate_network(&net, PrecisionPair::symmetric(16));
        let st16 = st.simulate_network(&net, PrecisionPair::symmetric(16));
        assert!(
            st16.fps > bf16.fps,
            "Stripes should win at 16-bit: {} vs {}",
            st16.fps,
            bf16.fps
        );
    }

    #[test]
    fn cache_makes_repeat_simulation_identical() {
        let net = NetworkSpec::resnet18_cifar();
        let p = PrecisionPair::symmetric(8);
        let mut ours = Accelerator::ours().with_search(small_search());
        let a = ours.simulate_network(&net, p);
        let b = ours.simulate_network(&net, p);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.total_energy(), b.total_energy());
    }

    #[test]
    fn average_over_set_between_extremes() {
        let net = NetworkSpec::resnet18_cifar();
        let mut ours = Accelerator::ours().with_search(small_search());
        let set = PrecisionSet::new(&[4, 8]);
        let (avg_fps, avg_e) = ours.average_over_set(&net, &set);
        let f4 = ours.simulate_network(&net, PrecisionPair::symmetric(4)).fps;
        let f8 = ours.simulate_network(&net, PrecisionPair::symmetric(8)).fps;
        assert!(avg_fps <= f4.max(f8) && avg_fps >= f4.min(f8));
        assert!(avg_e > 0.0);
    }

    #[test]
    fn dram_dominates_energy_breakdown() {
        // Fig. 9: DRAM access dominates total energy.
        let net = NetworkSpec::alexnet();
        let mut ours = Accelerator::ours().with_search(small_search());
        let perf = ours.simulate_network(&net, PrecisionPair::symmetric(4));
        let dram = perf.mem_energy[0];
        assert!(
            dram > perf.total_energy() * 0.4,
            "DRAM should dominate: {} of {}",
            dram,
            perf.total_energy()
        );
    }
}
