//! DNNGuard comparison (paper §4.3.2).

use tia_accel::DnnGuardModel;
use tia_nn::workload::NetworkSpec;

/// Area of a fixed 16-bit MAC unit relative to the standard 8-bit reference
/// (quadratic multiplier scaling would give 4x; synthesized 16-bit MACs land
/// near 1.8x once registers/control are included).
const MAC16_AREA: f64 = 1.8;

/// Throughput (FPS) of a DNNGuard-style robustness-aware accelerator
/// running `net`.
///
/// Model (see `tia-accel::DnnGuardModel` docs): a fixed-16-bit MAC array
/// under the same area budget co-executes the target DNN and a ResNet-18
/// class detection network; elastic orchestration taxes the array; weights
/// of both networks stream from DRAM at 16-bit. This models DNNGuard's
/// *structural* costs charitably (it gets our memory system for free), so
/// the measured advantage of the 2-in-1 Accelerator is a lower bound on the
/// paper's published ratios — the orderings across networks and precision
/// sets are what reproduce (EXPERIMENTS.md).
pub fn dnnguard_throughput(net: &NetworkSpec, area_budget: f64, freq_ghz: f64) -> f64 {
    let model = DnnGuardModel::default();
    let units = (area_budget / MAC16_AREA).floor().max(1.0);
    let ppc = units * (1.0 - model.orchestration_tax);
    let detector = NetworkSpec::resnet18_imagenet();
    let work = (net.total_macs() + detector.total_macs()) as f64;
    let compute_cycles = work / ppc.max(1e-9);
    // 16-bit weights of both networks stream from DRAM (batch-1 inference).
    let dram_bytes = (net.total_weights() + detector.total_weights()) as f64 * 2.0;
    let dram_cycles = dram_bytes / 64.0;
    let cycles = compute_cycles.max(dram_cycles);
    freq_ghz * 1e9 / cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_network_runs_faster() {
        let a = dnnguard_throughput(&NetworkSpec::alexnet(), 4.4 * 1024.0, 1.0);
        let v = dnnguard_throughput(&NetworkSpec::vgg16(), 4.4 * 1024.0, 1.0);
        assert!(
            a > v,
            "AlexNet should be faster than VGG-16: {} vs {}",
            a,
            v
        );
    }

    #[test]
    fn detector_and_16bit_cost_throughput() {
        let net = NetworkSpec::alexnet();
        let guarded = dnnguard_throughput(&net, 1024.0, 1.0);
        // An unguarded standard-8-bit array of the same budget, compute only.
        let unguarded = 1.0e9 * 1024.0 / net.total_macs() as f64;
        assert!(guarded < unguarded * 0.5, "{} vs {}", guarded, unguarded);
    }
}
