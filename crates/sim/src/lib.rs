//! # tia-sim
//!
//! End-to-end accelerator simulation: network workload × accelerator design
//! × optimized dataflow → cycles, frames/second, energy and breakdowns.
//!
//! Three ready-made accelerator instances mirror the paper's comparison
//! setup (§4.1.2) — identical MAC-array area and memory configuration:
//!
//! * [`Accelerator::ours`] — the spatial-temporal MAC unit with the full
//!   evolutionary dataflow search,
//! * [`Accelerator::stripes`] — bit-serial baseline, dataflow *also* fully
//!   optimized (as the paper does),
//! * [`Accelerator::bitfusion`] — spatial baseline restricted to its
//!   published optimizer (global-buffer loop order only).
//!
//! Plus [`dnnguard_throughput`] for the §4.3.2 robustness-aware baseline.
//!
//! # Example
//!
//! ```
//! use tia_accel::PrecisionPair;
//! use tia_nn::workload::NetworkSpec;
//! use tia_sim::Accelerator;
//!
//! let mut ours = Accelerator::ours();
//! let mut bf = Accelerator::bitfusion();
//! let net = NetworkSpec::alexnet();
//! let p = PrecisionPair::symmetric(4);
//! let perf_ours = ours.simulate_network(&net, p);
//! let perf_bf = bf.simulate_network(&net, p);
//! assert!(perf_ours.fps > perf_bf.fps, "ours must beat Bit Fusion at 4-bit");
//! ```

#![deny(missing_docs)]

mod accelerator;
mod dnnguard_cmp;
mod report;

pub use accelerator::Accelerator;
pub use dnnguard_cmp::dnnguard_throughput;
pub use report::NetworkPerf;
