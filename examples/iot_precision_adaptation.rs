//! IoT scenario from the paper's introduction: an intelligent device that
//! adapts its inference precision set at run time to the threat level and
//! the remaining battery — *without retraining* (paper §2.5 / Fig. 11).
//!
//! One RPS-trained model serves three operating modes:
//! * "hostile" — wide precision set 4~16-bit, maximum robustness;
//! * "normal"  — 4~8-bit, balanced;
//! * "low-battery" — static 4-bit, maximum efficiency.
//!
//! Run with: `cargo run --release --example iot_precision_adaptation`

use two_in_one_accel::prelude::*;

fn main() {
    let eps = 8.0 / 255.0;
    let mut rng = SeededRng::new(3);
    let profile = DatasetProfile::cifar10_like().with_sizes(256, 96);
    let (train, test) = generate(&profile, 7);
    let full_set = PrecisionSet::range(4, 16);
    let mut net = zoo::wide_resnet32_rps(3, 6, profile.classes, full_set.clone(), &mut rng);
    let cfg = TrainConfig::pgd7(eps)
        .with_rps(full_set)
        .with_epochs(4)
        .with_batch_size(16);
    adversarial_train(&mut net, &train, &cfg);

    let modes = [
        ("hostile (max robustness)", PrecisionSet::range(4, 16)),
        ("normal (balanced)", PrecisionSet::range(4, 8)),
        ("low battery (max efficiency)", PrecisionSet::new(&[4])),
    ];
    let eval = test.take(48);
    let attack = Pgd::new(eps, 10);
    let mut accel = Accelerator::ours();
    let wl = NetworkSpec::wide_resnet32_cifar();
    let (_, e_base) = accel.average_over_set(&wl, &modes[0].1);

    println!(
        "{:<30} {:>9} {:>9} {:>14} {:>12}",
        "Mode", "Natural", "Robust", "Energy/infer", "Battery gain"
    );
    for (name, set) in modes {
        let policy = PrecisionPolicy::Random(set.clone());
        let nat = natural_accuracy(&mut net, &eval, &policy, &mut rng);
        let rob = robust_accuracy(&mut net, &eval, &attack, &policy, &policy, 12, &mut rng);
        let (_, energy) = accel.average_over_set(&wl, &set);
        println!(
            "{:<30} {:>8.1}% {:>8.1}% {:>14.3e} {:>11.2}x",
            name,
            nat * 100.0,
            rob * 100.0,
            energy,
            e_base / energy
        );
    }
    println!("\nThe switch is instantaneous: one set of weights, no retraining.");
}
