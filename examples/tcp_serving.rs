//! TCP serving end to end, in one process:
//!
//! 1. Spawn `tia-serve` on a loopback port, fronting a sharded RPS engine.
//! 2. Drive it closed-loop with the load generator over the real wire
//!    protocol and print the throughput/latency report.
//! 3. Prove the determinism contract survives the network: replay the same
//!    request stream into an in-process `ShardedEngine` with the same seed
//!    and check the logits are bitwise identical.
//! 4. Scrape the live Prometheus metrics, then drain the server.
//!
//! Run with: `cargo run --release --example tcp_serving`

use two_in_one_accel::prelude::*;
use two_in_one_accel::serve::{fetch_metrics, infer_frame, run_load, Frame, LoadConfig};

fn main() {
    let set = PrecisionSet::range(4, 8);
    let shape = [3usize, 16, 16];
    let engine_cfg = EngineConfig::default().with_max_batch(8).with_seed(7);
    let replica =
        || zoo::preact_resnet18_rps(3, 4, 10, PrecisionSet::range(4, 8), &mut SeededRng::new(1));

    // 1. The server: two worker shards, RPS policy, metrics sidecar port.
    let server = Server::spawn(
        ServerConfig::default()
            .with_addr("127.0.0.1:0")
            .with_metrics_addr("127.0.0.1:0")
            .with_workers(2)
            .with_input_shape(shape)
            .with_policy(PrecisionPolicy::Random(set.clone()))
            .with_engine(engine_cfg.clone()),
        |_| replica(),
    )
    .expect("bind loopback");
    println!(
        "serving on {} (metrics on {:?})",
        server.addr(),
        server.metrics_addr()
    );

    // 2. Closed-loop load: 2 connections, 16 in flight each, 128 requests.
    let report = run_load(&LoadConfig {
        addr: server.addr().to_string(),
        connections: 2,
        requests: 128,
        inflight: 16,
        rate: None,
        shape,
        seed: 5,
        policy: WirePolicy::Server,
        ..LoadConfig::default()
    })
    .expect("load run");
    println!("closed loop: {}", report.summary());

    // 3. Determinism across the wire: one fresh connection, a pipelined
    //    burst, and the same burst through an in-process engine.
    let mut rng = SeededRng::new(9);
    let burst = Tensor::rand_uniform(&[10, shape[0], shape[1], shape[2]], 0.0, 1.0, &mut rng);
    let mut client = Client::connect(server.addr()).expect("connect");
    for i in 0..10 {
        client
            .send(&infer_frame(
                i as u64,
                &burst.index_axis0(i),
                WirePolicy::Server,
            ))
            .expect("send");
    }
    let mut tcp_logits: Vec<(u64, Vec<u32>)> = (0..10)
        .map(|_| match client.recv().expect("recv") {
            Frame::Logits(r) => (r.id, r.logits.iter().map(|v| v.to_bits()).collect()),
            other => panic!("unexpected frame {other:?}"),
        })
        .collect();
    tcp_logits.sort_by_key(|(id, _)| *id);

    // The server consumed exactly 128 schedule draws for the load run (one
    // per Server-policy request, regardless of how the two connections
    // interleaved), so consuming 128 draws locally aligns the stream; the
    // burst then occupies the same schedule positions on both sides.
    let mut local =
        ShardedEngine::with_factory(2, |_| replica(), PrecisionPolicy::Random(set), engine_cfg);
    let filler = Tensor::zeros(&shape);
    for _ in 0..128 {
        local.submit(filler.clone());
    }
    let _ = local.flush();
    let local_burst = local.serve(&burst);
    let mut matches = 0;
    for (tcp, local) in tcp_logits.iter().zip(&local_burst) {
        let local_bits: Vec<u32> = local.logits.data().iter().map(|v| v.to_bits()).collect();
        if tcp.1 == local_bits {
            matches += 1;
        }
    }
    println!("bitwise-identical logits across the wire: {matches}/10");
    assert_eq!(matches, 10, "the determinism contract must survive TCP");

    // 4. Live metrics, then drain.
    if let Some(addr) = server.metrics_addr() {
        let text = fetch_metrics(addr).expect("scrape");
        for line in text.lines().filter(|l| {
            l.starts_with("tia_serve_requests_total")
                || l.starts_with("tia_serve_batches_total")
                || (l.starts_with("tia_serve_frames_by_precision_total") && !l.ends_with(" 0"))
        }) {
            println!("metric: {line}");
        }
    }
    let engine = server.shutdown();
    println!(
        "drained: {} requests in {} batches (mean batch {:.1})",
        engine.stats().requests,
        engine.stats().batches,
        engine.stats().mean_batch()
    );
}
