//! Quickstart: the whole 2-in-1 pipeline in one file.
//!
//! 1. Generate a synthetic CIFAR-10-like dataset.
//! 2. Adversarially train a PreActResNet-18-lite with RPS (random precision
//!    switch per iteration + switchable BN).
//! 3. Attack it with PGD-20 and compare fixed-precision vs RPS inference.
//! 4. Estimate the efficiency win on the 2-in-1 accelerator.
//! 5. Deploy: serve requests through the micro-batching engine with
//!    hardware co-simulation, getting logits *and* cycles/energy per batch.
//! 6. Scale out: shard the *trained* model across worker threads and check
//!    the sharded responses are bitwise-identical to single-threaded serving.
//!
//! Run with: `cargo run --release --example quickstart`

use two_in_one_accel::prelude::*;

fn main() {
    let eps = 8.0 / 255.0;
    let mut rng = SeededRng::new(0);

    // 1. Data.
    let profile = DatasetProfile::cifar10_like().with_sizes(256, 96);
    let (train, test) = generate(&profile, 42);
    println!(
        "dataset: {} ({} train / {} test)",
        profile.name,
        train.len(),
        test.len()
    );

    // 2. RPS adversarial training (PGD-7 inner maximization).
    let set = PrecisionSet::range(4, 8);
    let mut net = zoo::preact_resnet18_rps(3, 6, profile.classes, set.clone(), &mut rng);
    let cfg = TrainConfig::pgd7(eps)
        .with_rps(set.clone())
        .with_epochs(4)
        .with_batch_size(16);
    let report = adversarial_train(&mut net, &train, &cfg);
    println!(
        "trained {} epochs, adversarial loss {:.3} -> {:.3}",
        report.epoch_losses.len(),
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap()
    );

    // 3. Robust accuracy: static 8-bit inference vs random precision switch.
    let eval = test.take(48);
    let attack = Pgd::new(eps, 20);
    let fixed = PrecisionPolicy::Fixed(Some(Precision::new(8)));
    let rps = PrecisionPolicy::Random(set.clone());
    let acc_fixed = robust_accuracy(&mut net, &eval, &attack, &fixed, &fixed, 12, &mut rng);
    let acc_rps = robust_accuracy(&mut net, &eval, &attack, &fixed, &rps, 12, &mut rng);
    println!("PGD-20 robust accuracy, attacker at fixed 8-bit:");
    println!(
        "  inference fixed 8-bit (attacker matched): {:5.1}%",
        acc_fixed * 100.0
    );
    println!(
        "  inference RPS {}:                    {:5.1}%",
        set,
        acc_rps * 100.0
    );

    // 4. Efficiency on the 2-in-1 accelerator (full-size workload shapes).
    let mut ours = Accelerator::ours();
    let wl = NetworkSpec::resnet18_cifar();
    let f16 = ours.simulate_network(&wl, PrecisionPair::symmetric(16)).fps;
    let (favg, _) = ours.average_over_set(&wl, &set);
    println!(
        "accelerator: ResNet-18/CIFAR at 16-bit {:.0} FPS, RPS {} average {:.0} FPS ({:.2}x)",
        f16,
        set,
        favg,
        favg / f16
    );

    // 5. Deployment: the serving engine, with the accelerator co-simulating
    // every batch it executes.
    let sim = SimBacked::new(net.clone(), ours, wl);
    let policy = PrecisionPolicy::Random(set.clone());
    let cfg = EngineConfig::default().with_max_batch(16).with_seed(1);
    let mut engine = Engine::new(sim, policy, cfg);
    let burst = test.take(32);
    for i in 0..burst.len() {
        engine.submit(burst.image(i));
    }
    let responses = engine.flush();
    let correct = responses
        .iter()
        .zip(burst.labels())
        .filter(|(r, &y)| r.top1 == y)
        .count();
    let stats = engine.stats();
    println!(
        "served {} requests in {} micro-batches under RPS {}: {}/{} correct",
        stats.requests,
        stats.batches,
        set,
        correct,
        burst.len()
    );
    println!(
        "  hardware cost: {:.2e} cycles, {:.2e} energy units, {:.0} FPS sustained",
        stats.cost.cycles, stats.cost.energy, stats.cost.fps
    );

    // 6. Scale out: replicate the trained model across 4 worker shards.
    // Same seed + same submission order => the precision schedule and every
    // logit bit match the single-threaded engine above.
    let mut sharded = ShardedEngine::with_factory(
        4,
        |_| net.clone(),
        PrecisionPolicy::Random(set.clone()),
        EngineConfig::default().with_max_batch(16).with_seed(1),
    );
    let t = std::time::Instant::now();
    for i in 0..burst.len() {
        sharded.submit(burst.image(i));
    }
    let sharded_responses = sharded.flush();
    let elapsed = t.elapsed();
    let identical = sharded_responses
        .iter()
        .zip(&responses)
        .all(|(a, b)| a.precision == b.precision && a.logits.data() == b.logits.data());
    // stdout stays fully seeded/deterministic (the repo's verify contract);
    // wall-clock timing goes to stderr.
    println!(
        "sharded across {} workers: {} requests served, \
         bitwise-identical to single-threaded serving: {}",
        sharded.workers(),
        sharded_responses.len(),
        identical
    );
    eprintln!(
        "  ({:.1} ms wall-clock, {:.0} req/s)",
        elapsed.as_secs_f64() * 1e3,
        sharded_responses.len() as f64 / elapsed.as_secs_f64(),
    );
}
