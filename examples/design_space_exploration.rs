//! Architect's view: use the generic accelerator optimizer (paper §3.3,
//! Alg. 2 mode 2) to co-search micro-architecture and dataflow for a target
//! workload mix under an area budget, then compare designs.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use two_in_one_accel::dataflow::ArchSearch;
use two_in_one_accel::prelude::*;

fn main() {
    let budget = 4.4 * 512.0; // half the paper's comparison budget
    let mut rng = SeededRng::new(11);

    // Workload mix: three representative ResNet-50 layers at 4- and 8-bit.
    let net = NetworkSpec::resnet50_imagenet();
    let mut workloads = vec![];
    for li in [1usize, 20, 45] {
        for bits in [4u8, 8] {
            workloads.push(Workload::new(
                &net.layers[li],
                PrecisionPair::symmetric(bits),
            ));
        }
    }

    println!(
        "searching micro-architectures under area budget {:.0}...",
        budget
    );
    for kind in [
        MacKind::spatial_temporal(),
        MacKind::Temporal,
        MacKind::Spatial,
    ] {
        let search = ArchSearch::new(budget);
        let (cfg, score) = search.run(kind, &workloads, &mut rng);
        println!(
            "{:<12} best: {:>5} units, {:>4} KiB global buffer, mean EDP {:.3e}",
            MacUnit::new(kind).kind().name(),
            cfg.units,
            cfg.gb_bytes / 1024,
            score
        );
    }

    // Dataflow detail for the winning design on one layer.
    let arch = ArchConfig::with_mac_area_budget(MacKind::spatial_temporal(), budget);
    let wl = workloads[2];
    let best = EvoSearch::default().run(&arch, &wl, &mut rng);
    println!(
        "\nbest dataflow for {:?} @ {}: {:.0} cycles ({:.0} compute), {:.1}% PE utilization",
        wl.bounds,
        wl.precision,
        best.perf.total_cycles,
        best.perf.compute_cycles,
        best.perf.utilization * 100.0
    );
    println!("NoC tile (spatial): {:?}", best.dataflow.tiling.factors[2]);
}
