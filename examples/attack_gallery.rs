//! Attack gallery: every attack in the suite against one adversarially
//! trained model, with and without RPS inference — a compact view of the
//! paper's §4.2.2 claim that RPS helps across attack families (including
//! the gradient-free Bandits attack, ruling out obfuscated gradients).
//!
//! Run with: `cargo run --release --example attack_gallery`

use two_in_one_accel::attack::Square;
use two_in_one_accel::prelude::*;

fn main() {
    let eps = 8.0 / 255.0;
    let mut rng = SeededRng::new(5);
    let profile = DatasetProfile::cifar10_like().with_sizes(256, 96);
    let (train, test) = generate(&profile, 13);
    let set = PrecisionSet::range(4, 8);
    let mut net = zoo::preact_resnet18_rps(3, 6, profile.classes, set.clone(), &mut rng);
    let cfg = TrainConfig::pgd7(eps)
        .with_rps(set.clone())
        .with_epochs(4)
        .with_batch_size(16);
    adversarial_train(&mut net, &train, &cfg);

    let eval = test.take(36);
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(Fgsm::new(eps)),
        Box::new(FgsmRs::new(eps)),
        Box::new(Pgd::new(eps, 20)),
        Box::new(CwInf::new(eps, 20)),
        Box::new(Apgd::new(eps, 20)),
        Box::new(Bandits::new(eps, 20)),
        Box::new(Square::new(eps, 20)),
        Box::new(EPgd::new(eps, 10, set.clone())),
    ];
    let fixed = PrecisionPolicy::Fixed(Some(Precision::new(8)));
    let rps = PrecisionPolicy::Random(set);
    println!("{:<24} {:>12} {:>12}", "Attack", "fixed 8-bit", "RPS 4~8");
    for attack in attacks {
        let a_fixed = robust_accuracy(
            &mut net,
            &eval,
            attack.as_ref(),
            &fixed,
            &fixed,
            12,
            &mut rng,
        );
        let a_rps = robust_accuracy(&mut net, &eval, attack.as_ref(), &fixed, &rps, 12, &mut rng);
        println!(
            "{:<24} {:>11.1}% {:>11.1}%",
            attack.name(),
            a_fixed * 100.0,
            a_rps * 100.0
        );
    }
}
