//! Allocation-regression tests for the serving hot path.
//!
//! The binary installs a counting global allocator and asserts the two
//! steady-state properties the zero-allocation hot path promises:
//!
//! 1. after warmup, `Backend::infer_batch` on a `Network` — the inner loop
//!    of every served micro-batch, including a *random precision switch*
//!    per call — performs **zero** heap allocations when the caller closes
//!    the reuse cycle by recycling the logits tensor;
//! 2. a full `Engine::serve` burst settles to a constant, small,
//!    response-materialisation-only allocation count — per-request
//!    `Response` logits must escape to the caller, but nothing else may
//!    allocate per burst, and the count must not grow burst over burst;
//! 3. the flight recorder's enabled record path is allocation-free after
//!    its ring is registered — thousands of stage events, including full
//!    ring wrap-around, are pure atomic stores.
//!
//! Everything runs inside one `#[test]` so no concurrent test pollutes the
//! global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use two_in_one_accel::prelude::*;

struct CountingAllocator;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that grows is an allocation for our purposes.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocs() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_serving_allocations() {
    let set = PrecisionSet::range(4, 8);
    let mut rng = SeededRng::new(1);
    let mut net = zoo::preact_resnet18_rps(3, 4, 5, set.clone(), &mut rng);
    let x = Tensor::rand_uniform(&[8, 3, 8, 8], 0.0, 1.0, &mut rng);
    let precisions: Vec<Option<Precision>> =
        std::iter::once(None).chain(set.iter().map(Some)).collect();

    // --- Part 1: the backend hot path is allocation-free after warmup. ---
    // Warmup passes populate the per-precision prepacked-weight memos and
    // let the workspace pool converge to its steady buffer set.
    for _ in 0..3 {
        for &p in &precisions {
            let y = Backend::infer_batch(&mut net, &x, p);
            net.recycle(y);
        }
    }
    let before = allocs();
    for _ in 0..2 {
        for &p in &precisions {
            // Every iteration is a precision switch — under the memo it must
            // cost a lookup, not a re-quantize + re-pack (which would show
            // up here as allocations).
            let y = Backend::infer_batch(&mut net, &x, p);
            net.recycle(y);
        }
    }
    let hot_path = allocs() - before;
    assert_eq!(
        hot_path,
        0,
        "warmed Network::infer_batch must not allocate (got {} allocations \
         across {} precision-switching batches)",
        hot_path,
        2 * precisions.len(),
    );

    // --- Part 2: Engine::serve settles to response materialisation only. ---
    let mut engine = Engine::new(
        &mut net,
        PrecisionPolicy::Fixed(Some(Precision::new(8))),
        EngineConfig::default().with_max_batch(8).with_seed(7),
    );
    let requests = x.shape()[0];
    for _ in 0..3 {
        let _ = engine.serve(&x); // warmup: fixed policy => identical bursts
    }
    let burst = |engine: &mut Engine<&mut Network>| {
        let before = allocs();
        let responses = engine.serve(&x);
        assert_eq!(responses.len(), requests);
        allocs() - before
    };
    let second = burst(&mut engine);
    let third = burst(&mut engine);
    assert_eq!(
        second, third,
        "steady-state serve bursts must have identical allocation counts"
    );
    // Each response owns its logits (one escaping buffer); everything else —
    // batch assembly, image staging, the whole layer stack — is recycled.
    // Allow a small constant for the response/grouping containers.
    let bound = 2 * requests + 16;
    assert!(
        second <= bound,
        "steady-state serve allocated {} times for {} requests (bound {})",
        second,
        requests,
        bound
    );

    // --- Part 3: the enabled trace record path allocates nothing. ---
    // Registration allocates the ring's slot arrays up front; a first
    // record warms nothing further. From then on every record — here 4×
    // the ring's capacity, so the overwrite-oldest wrap path runs too —
    // must be pure atomic stores on the manual clock seam.
    let sink = tia_serve::TraceSink::new(tia_serve::Clock::manual());
    let ring = sink.register("hot-path", 1 << 10);
    ring.record(tia_serve::Stage::Enqueued, 1, 0, 0);
    let before = allocs();
    for i in 0..4096u64 {
        ring.record(tia_serve::Stage::Enqueued, i + 2, i as u32, 0);
    }
    let trace_path = allocs() - before;
    assert_eq!(
        trace_path, 0,
        "warmed trace recording must not allocate (got {trace_path} \
         allocations across 4096 events)"
    );
    assert_eq!(ring.recorded(), 4097);
    assert_eq!(ring.overwritten(), 4097 - (1 << 10));
}
