//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary inputs, not just the unit-test fixtures.
//!
//! Inputs are drawn from the workspace's own `SeededRng` (the container has
//! no third-party property-testing crate), so every case is deterministic
//! and a failure message pins the exact case index for replay.

use two_in_one_accel::prelude::*;
use two_in_one_accel::quant::{fake_quant_affine, fake_quant_symmetric};
use two_in_one_accel::tensor::{col2im, im2col, Conv2dGeometry};

const CASES: usize = 64;

#[test]
fn quantization_is_idempotent_and_bounded() {
    let mut rng = SeededRng::new(0x51AB);
    for case in 0..CASES {
        let n = 1 + rng.below(63);
        let bits = 2 + rng.below(15) as u8;
        let vals: Vec<f32> = (0..n).map(|_| rng.uniform_in(-10.0, 10.0)).collect();
        let t = Tensor::from_vec(vals, &[n]);
        let p = Precision::new(bits);
        let q1 = fake_quant_symmetric(&t, p);
        let q2 = fake_quant_symmetric(&q1, p);
        // Idempotent (up to float noise).
        for (a, b) in q1.data().iter().zip(q2.data()) {
            assert!(
                (a - b).abs() < 1e-4,
                "case {}: not idempotent ({} vs {})",
                case,
                a,
                b
            );
        }
        // Error bounded by half a grid step.
        let qmax = ((1i64 << (bits - 1)) - 1) as f32;
        let step = t.abs_max() / qmax;
        for (a, b) in t.data().iter().zip(q1.data()) {
            assert!(
                (a - b).abs() <= step / 2.0 + 1e-5,
                "case {}: error above half step",
                case
            );
        }
    }
}

#[test]
fn affine_quantization_stays_in_range() {
    let mut rng = SeededRng::new(0xAFF1);
    for case in 0..CASES {
        let n = 1 + rng.below(63);
        let bits = 2 + rng.below(15) as u8;
        let vals: Vec<f32> = (0..n).map(|_| rng.uniform()).collect();
        let t = Tensor::from_vec(vals, &[n]);
        let (q, params) = fake_quant_affine(&t, Precision::new(bits));
        assert!(params.scale >= 0.0, "case {}", case);
        for &v in q.data() {
            assert!(
                v >= t.min() - params.scale && v <= t.max() + params.scale,
                "case {}: {} outside calibrated range",
                case,
                v
            );
        }
    }
}

#[test]
fn im2col_col2im_adjoint_property() {
    let mut rng = SeededRng::new(0xC01);
    for case in 0..CASES {
        let c = 1 + rng.below(3);
        let hw = 3 + rng.below(5);
        let k = 1 + rng.below(3);
        let stride = 1 + rng.below(2);
        if hw + 2 < k {
            continue;
        }
        let geo = Conv2dGeometry::new(c, 1, k, stride, 1);
        let x = Tensor::randn(&[c, hw, hw], 1.0, &mut rng);
        let cols = im2col(&x, &geo);
        let y = Tensor::randn(cols.shape(), 1.0, &mut rng);
        // <im2col(x), y> == <x, col2im(y)> — the operators are adjoint.
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &geo, hw, hw);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "case {}: adjoint mismatch {} vs {}",
            case,
            lhs,
            rhs
        );
    }
}

#[test]
fn random_dataflows_predict_validly() {
    use two_in_one_accel::dataflow::predict;
    use two_in_one_accel::nn::workload::LayerSpec;
    let mut rng = SeededRng::new(0xDF10);
    for case in 0..CASES {
        let k = 1 + rng.below(63);
        let cc = 1 + rng.below(63);
        let yx = (1 + rng.below(15)).max(3);
        let bits = 1 + rng.below(16) as u8;
        let layer = LayerSpec::conv("p", cc, k, 3, 1, 1, yx, yx);
        let wl = Workload::new(&layer, PrecisionPair::symmetric(bits));
        let arch = ArchConfig::with_mac_area_budget(MacKind::spatial_temporal(), 128.0);
        let df = Dataflow::random(wl.bounds, &mut rng);
        if let Some(perf) = predict(&arch, &wl, &df) {
            assert!(
                perf.total_cycles.is_finite() && perf.total_cycles > 0.0,
                "case {}",
                case
            );
            assert!(
                perf.total_energy().is_finite() && perf.total_energy() > 0.0,
                "case {}",
                case
            );
            assert!(perf.stall_cycles >= -1e-9, "case {}", case);
            assert!(
                perf.utilization > 0.0 && perf.utilization <= 1.0,
                "case {}",
                case
            );
        }
    }
}

#[test]
fn minimal_dataflow_always_valid() {
    use two_in_one_accel::dataflow::predict;
    use two_in_one_accel::nn::workload::LayerSpec;
    let mut rng = SeededRng::new(0xD31);
    for case in 0..CASES {
        let k = 1 + rng.below(127);
        let cc = 1 + rng.below(127);
        let yx = (1 + rng.below(31)).max(3);
        let bits = 1 + rng.below(16) as u8;
        let layer = LayerSpec::conv("p", cc, k, 3, 1, 1, yx, yx);
        let wl = Workload::new(&layer, PrecisionPair::symmetric(bits));
        let arch = ArchConfig::with_mac_area_budget(MacKind::Spatial, 64.0);
        let df = Dataflow::minimal(wl.bounds);
        assert!(
            predict(&arch, &wl, &df).is_some(),
            "case {}: minimal dataflow invalid",
            case
        );
    }
}

#[test]
fn mac_models_positive_and_finite() {
    for w in 1u8..=16 {
        for a in 1u8..=16 {
            let p = PrecisionPair::new(w, a);
            for kind in [
                MacKind::Temporal,
                MacKind::Spatial,
                MacKind::spatial_temporal(),
            ] {
                let u = MacUnit::new(kind);
                assert!(u.products_per_cycle(p) > 0.0, "{:?} w{} a{}", kind, w, a);
                assert!(u.energy_per_mac(p) > 0.0, "{:?} w{} a{}", kind, w, a);
                assert!(u.area() > 0.0, "{:?}", kind);
            }
        }
    }
}

#[test]
fn projection_invariant_under_any_gradient() {
    let mut rng = SeededRng::new(0x9201);
    for case in 0..24 {
        let eps = (1 + rng.below(31)) as f32 / 255.0;
        let mut net = zoo::preact_resnet18_lite(3, 2, 2, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let adv = Fgsm::new(eps).perturb(&mut net, &x, &[0], &mut rng);
        assert!(
            x.sub(&adv).abs_max() <= eps + 1e-6,
            "case {}: left the eps ball",
            case
        );
        assert!(
            adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "case {}: left [0,1]",
            case
        );
    }
}
