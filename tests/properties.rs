//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary inputs, not just the unit-test fixtures.

use proptest::prelude::*;
use two_in_one_accel::prelude::*;
use two_in_one_accel::quant::{fake_quant_affine, fake_quant_symmetric};
use two_in_one_accel::tensor::{col2im, im2col, Conv2dGeometry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantization_is_idempotent_and_bounded(
        vals in prop::collection::vec(-10.0f32..10.0, 1..64),
        bits in 2u8..=16,
    ) {
        let n = vals.len();
        let t = Tensor::from_vec(vals, &[n]);
        let p = Precision::new(bits);
        let q1 = fake_quant_symmetric(&t, p);
        let q2 = fake_quant_symmetric(&q1, p);
        // Idempotent (up to float noise).
        for (a, b) in q1.data().iter().zip(q2.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        // Error bounded by half a grid step.
        let qmax = ((1i64 << (bits - 1)) - 1) as f32;
        let step = t.abs_max() / qmax;
        for (a, b) in t.data().iter().zip(q1.data()) {
            prop_assert!((a - b).abs() <= step / 2.0 + 1e-5);
        }
    }

    #[test]
    fn affine_quantization_stays_in_range(
        vals in prop::collection::vec(0.0f32..1.0, 1..64),
        bits in 2u8..=16,
    ) {
        let n = vals.len();
        let t = Tensor::from_vec(vals, &[n]);
        let (q, params) = fake_quant_affine(&t, Precision::new(bits));
        prop_assert!(params.scale >= 0.0);
        for &v in q.data() {
            prop_assert!(v >= t.min() - params.scale && v <= t.max() + params.scale);
        }
    }

    #[test]
    fn im2col_col2im_adjoint_property(
        c in 1usize..4,
        hw in 3usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw + 2 >= k);
        let geo = Conv2dGeometry::new(c, 1, k, stride, 1);
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn(&[c, hw, hw], 1.0, &mut rng);
        let cols = im2col(&x, &geo);
        let y = Tensor::randn(cols.shape(), 1.0, &mut rng);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &geo, hw, hw);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "adjoint mismatch {} vs {}", lhs, rhs);
    }

    #[test]
    fn random_dataflows_predict_validly(
        k in 1usize..64,
        cc in 1usize..64,
        yx in 1usize..16,
        bits in 1u8..=16,
        seed in 0u64..1000,
    ) {
        use two_in_one_accel::dataflow::predict;
        use two_in_one_accel::nn::workload::LayerSpec;
        let layer = LayerSpec::conv("p", cc, k, 3, 1, 1, yx.max(3), yx.max(3));
        let wl = Workload::new(&layer, PrecisionPair::symmetric(bits));
        let arch = ArchConfig::with_mac_area_budget(MacKind::spatial_temporal(), 128.0);
        let mut rng = SeededRng::new(seed);
        let df = Dataflow::random(wl.bounds, &mut rng);
        if let Some(perf) = predict(&arch, &wl, &df) {
            prop_assert!(perf.total_cycles.is_finite() && perf.total_cycles > 0.0);
            prop_assert!(perf.total_energy().is_finite() && perf.total_energy() > 0.0);
            prop_assert!(perf.stall_cycles >= -1e-9);
            prop_assert!(perf.utilization > 0.0 && perf.utilization <= 1.0);
        }
    }

    #[test]
    fn minimal_dataflow_always_valid(
        k in 1usize..128,
        cc in 1usize..128,
        yx in 1usize..32,
        bits in 1u8..=16,
    ) {
        use two_in_one_accel::dataflow::predict;
        use two_in_one_accel::nn::workload::LayerSpec;
        let layer = LayerSpec::conv("p", cc, k, 3, 1, 1, yx.max(3), yx.max(3));
        let wl = Workload::new(&layer, PrecisionPair::symmetric(bits));
        let arch = ArchConfig::with_mac_area_budget(MacKind::Spatial, 64.0);
        let df = Dataflow::minimal(wl.bounds);
        prop_assert!(predict(&arch, &wl, &df).is_some());
    }

    #[test]
    fn mac_models_positive_and_finite(w in 1u8..=16, a in 1u8..=16) {
        let p = PrecisionPair::new(w, a);
        for kind in [MacKind::Temporal, MacKind::Spatial, MacKind::spatial_temporal()] {
            let u = MacUnit::new(kind);
            prop_assert!(u.products_per_cycle(p) > 0.0);
            prop_assert!(u.energy_per_mac(p) > 0.0);
            prop_assert!(u.area() > 0.0);
        }
    }

    #[test]
    fn projection_invariant_under_any_gradient(
        seed in 0u64..500,
        eps_num in 1u32..32,
    ) {
        let eps = eps_num as f32 / 255.0;
        let mut rng = SeededRng::new(seed);
        let mut net = zoo::preact_resnet18_lite(3, 2, 2, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let adv = Fgsm::new(eps).perturb(&mut net, &x, &[0], &mut rng);
        prop_assert!(x.sub(&adv).abs_max() <= eps + 1e-6);
        prop_assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
