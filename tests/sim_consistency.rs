//! Integration tests of the architecture side: the simulator must reproduce
//! the paper's qualitative orderings end-to-end.

use two_in_one_accel::prelude::*;

#[test]
fn ours_wins_throughput_on_all_six_networks_at_4bit() {
    let p = PrecisionPair::symmetric(4);
    let mut ours = Accelerator::ours();
    let mut bf = Accelerator::bitfusion();
    let mut st = Accelerator::stripes();
    for net in NetworkSpec::paper_six() {
        let fo = ours.simulate_network(&net, p).fps;
        let fb = bf.simulate_network(&net, p).fps;
        let fs = st.simulate_network(&net, p).fps;
        assert!(fo > fb, "{}: ours {} <= bitfusion {}", net.name, fo, fb);
        assert!(fo > fs, "{}: ours {} <= stripes {}", net.name, fo, fs);
    }
}

#[test]
fn ours_wins_energy_on_all_six_networks_at_4bit() {
    let p = PrecisionPair::symmetric(4);
    let mut ours = Accelerator::ours();
    let mut bf = Accelerator::bitfusion();
    for net in NetworkSpec::paper_six() {
        let eo = ours.simulate_network(&net, p).total_energy();
        let eb = bf.simulate_network(&net, p).total_energy();
        assert!(
            eo < eb,
            "{}: ours energy {} >= bitfusion {}",
            net.name,
            eo,
            eb
        );
    }
}

#[test]
fn ours_throughput_improves_as_precision_drops() {
    let mut ours = Accelerator::ours();
    let net = NetworkSpec::resnet18_cifar();
    let mut prev = 0.0;
    for b in [16u8, 12, 8, 6, 4, 2] {
        let fps = ours.simulate_network(&net, PrecisionPair::symmetric(b)).fps;
        assert!(
            fps >= prev * 0.98,
            "throughput should not fall as precision drops: {}-bit {} vs prev {}",
            b,
            fps,
            prev
        );
        prev = fps;
    }
}

#[test]
fn bitfusion_flat_across_unsupported_precisions() {
    // Fig. 2: 5/6/7-bit run at 8-bit speed on Bit Fusion.
    let mut bf = Accelerator::bitfusion();
    let net = NetworkSpec::resnet18_cifar();
    let f8 = bf.simulate_network(&net, PrecisionPair::symmetric(8)).fps;
    for b in [5u8, 6, 7] {
        let f = bf.simulate_network(&net, PrecisionPair::symmetric(b)).fps;
        assert!(
            (f - f8).abs() / f8 < 0.02,
            "{}-bit {} vs 8-bit {}",
            b,
            f,
            f8
        );
    }
}

#[test]
fn crossover_between_bitfusion_and_stripes() {
    // Fig. 2's dilemma: Bit Fusion wins at low precision, Stripes at 16-bit.
    let mut bf = Accelerator::bitfusion();
    let mut st = Accelerator::stripes();
    let net = NetworkSpec::resnet50_imagenet();
    let bf4 = bf.simulate_network(&net, PrecisionPair::symmetric(4)).fps;
    let st4 = st.simulate_network(&net, PrecisionPair::symmetric(4)).fps;
    let bf16 = bf.simulate_network(&net, PrecisionPair::symmetric(16)).fps;
    let st16 = st.simulate_network(&net, PrecisionPair::symmetric(16)).fps;
    assert!(bf4 > st4, "Bit Fusion should win at 4-bit");
    assert!(st16 > bf16, "Stripes should win at 16-bit");
}

#[test]
fn dnnguard_comparison_orderings() {
    let budget = 4.4 * 1024.0;
    let mut ours = Accelerator::ours();
    let mut ratios = vec![];
    for net in [
        NetworkSpec::alexnet(),
        NetworkSpec::vgg16(),
        NetworkSpec::resnet50_imagenet(),
    ] {
        let dg = dnnguard_throughput(&net, budget, 1.0);
        let (f48, _) = ours.average_over_set(&net, &PrecisionSet::range(4, 8));
        let (f416, _) = ours.average_over_set(&net, &PrecisionSet::range(4, 16));
        assert!(f48 > f416, "{}: narrower low set must be faster", net.name);
        ratios.push(f48 / dg);
    }
    // Paper ordering: AlexNet > VGG-16 > ResNet-50 advantage.
    assert!(
        ratios[0] > ratios[2],
        "AlexNet advantage should exceed ResNet-50: {:?}",
        ratios
    );
}

#[test]
fn mac_anchor_ratios_hold_end_to_end() {
    let p8 = PrecisionPair::symmetric(8);
    let ours = MacUnit::new(MacKind::spatial_temporal());
    let bf = MacUnit::new(MacKind::Spatial);
    let tpa = (ours.products_per_cycle(p8) / ours.area()) / (bf.products_per_cycle(p8) / bf.area());
    assert!((tpa - 2.3).abs() < 0.15);
    let epo = bf.energy_per_mac(p8) / ours.energy_per_mac(p8);
    assert!((epo - 4.88).abs() < 0.3);
}

#[test]
fn energy_breakdown_components_sum() {
    let mut ours = Accelerator::ours();
    let perf = ours.simulate_network(&NetworkSpec::alexnet(), PrecisionPair::symmetric(8));
    let sum: f64 = perf.mem_energy.iter().sum::<f64>() + perf.mac_energy;
    assert!((sum - perf.total_energy()).abs() < 1e-9);
    assert!(perf.stall_fraction() >= 0.0 && perf.stall_fraction() < 1.0);
}
