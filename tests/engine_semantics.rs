//! Integration tests of the serving engine's core semantics: micro-batched
//! logits must be bitwise-identical to per-sample `Network::forward`, the
//! precision-switch schedule must be a pure function of the seed, and the
//! sharded runtime must produce identical results — logits, schedule and
//! merged cost ledger — for any worker count (the determinism contract of
//! `docs/ARCHITECTURE.md`).

use two_in_one_accel::prelude::*;

fn rps_net(seed: u64, set: &PrecisionSet) -> Network {
    let mut rng = SeededRng::new(seed);
    zoo::preact_resnet18_rps(3, 4, 5, set.clone(), &mut rng)
}

fn batch_of_one(x: &Tensor, i: usize) -> Tensor {
    let img = x.index_axis0(i);
    let mut shape = vec![1usize];
    shape.extend_from_slice(img.shape());
    img.reshape(&shape)
}

#[test]
fn micro_batched_logits_bitwise_equal_per_sample_forward() {
    // Property sweep: at every precision in 4~8-bit (and fp32), for several
    // random batches and micro-batch sizes, the engine's logits must match
    // the per-sample software path bit for bit.
    let set = PrecisionSet::range(4, 8);
    let mut net = rps_net(1, &set);
    let mut rng = SeededRng::new(2);
    let precisions: Vec<Option<Precision>> =
        std::iter::once(None).chain(set.iter().map(Some)).collect();
    for case in 0..3 {
        let n = 5 + case;
        let x = Tensor::rand_uniform(&[n, 3, 8, 8], 0.0, 1.0, &mut rng);
        for &p in &precisions {
            // Reference: one serving-mode forward per sample (Infer is the
            // path the engine runs — under the native kernel it takes the
            // true-integer route, so Eval would not be bitwise-comparable).
            let mut reference = Vec::with_capacity(n);
            for i in 0..n {
                net.set_precision(p);
                let logits = net.forward(&batch_of_one(&x, i), Mode::Infer);
                reference.push(logits.index_axis0(0));
            }
            for max_batch in [1usize, 3, 8] {
                let cfg = EngineConfig::default()
                    .with_max_batch(max_batch)
                    .with_seed(9);
                let mut engine = Engine::new(&mut net, PrecisionPolicy::Fixed(p), cfg);
                let responses = engine.serve(&x);
                for (i, r) in responses.iter().enumerate() {
                    let got: Vec<u32> = r.logits.data().iter().map(|v| v.to_bits()).collect();
                    let want: Vec<u32> = reference[i].data().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        got, want,
                        "case {}: sample {} at {:?} with max_batch {} is not bitwise equal",
                        case, i, p, max_batch
                    );
                }
            }
        }
    }
}

/// The contract the serving scheduler builds on: the seeded precision
/// schedule is a pure function of the *admission order* — how submissions
/// are grouped into flushes (batch-forming time, partial batches, EDF
/// windows upstream) must change neither the schedule nor a single logit
/// bit.
#[test]
fn schedule_is_pure_function_of_admission_order_not_flush_grouping() {
    const N: usize = 12;
    let set = PrecisionSet::range(4, 8);
    let mut rng = SeededRng::new(31);
    let x = Tensor::rand_uniform(&[N, 3, 8, 8], 0.0, 1.0, &mut rng);
    let cfg = EngineConfig::default().with_max_batch(4).with_seed(7);

    let run = |flush_points: &[usize]| {
        let mut engine = ShardedEngine::with_factory(
            2,
            |_| rps_net(1, &set),
            PrecisionPolicy::Random(set.clone()),
            cfg.clone(),
        );
        let mut responses = Vec::new();
        for i in 0..N {
            engine.submit(x.index_axis0(i));
            if flush_points.contains(&i) {
                responses.extend(engine.flush());
            }
        }
        responses.extend(engine.flush());
        responses
            .into_iter()
            .map(|r| {
                (
                    r.id,
                    r.precision,
                    r.logits
                        .data()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<u32>>(),
                )
            })
            .collect::<Vec<_>>()
    };

    // One big flush, per-request flushes, and a ragged grouping: admission
    // order is identical, so everything observable must be too.
    let want = run(&[]);
    for flush_points in [(0..N).collect::<Vec<_>>(), vec![2, 6, 7], vec![0, 10]] {
        let got = run(&flush_points);
        assert_eq!(
            got, want,
            "flush grouping {flush_points:?} perturbed the schedule or logits"
        );
    }
}

#[test]
fn random_policy_grouping_preserves_bitwise_identity() {
    // Under RPS the engine groups equal-precision requests into shared
    // batches; each response must still match the per-sample forward at the
    // precision the engine reports for it.
    let set = PrecisionSet::range(4, 8);
    let mut net = rps_net(3, &set);
    let mut rng = SeededRng::new(4);
    let x = Tensor::rand_uniform(&[12, 3, 8, 8], 0.0, 1.0, &mut rng);
    let cfg = EngineConfig::default().with_max_batch(4).with_seed(77);
    let mut engine = Engine::new(&mut net, PrecisionPolicy::Random(set), cfg);
    let responses = engine.serve(&x);
    drop(engine);
    assert_eq!(responses.len(), 12);
    for (i, r) in responses.iter().enumerate() {
        net.set_precision(r.precision);
        let want = net.forward(&batch_of_one(&x, i), Mode::Infer);
        let got: Vec<u32> = r.logits.data().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = want
            .index_axis0(0)
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(got, want, "request {} at {:?}", i, r.precision);
    }
}

#[test]
fn fixed_seed_reproduces_the_precision_schedule() {
    let set = PrecisionSet::range(4, 8);
    let mut rng = SeededRng::new(5);
    let x = Tensor::rand_uniform(&[16, 3, 8, 8], 0.0, 1.0, &mut rng);
    let schedule = |seed: u64| {
        let mut net = rps_net(6, &set);
        let cfg = EngineConfig::default().with_max_batch(4).with_seed(seed);
        let mut engine = Engine::new(&mut net, PrecisionPolicy::Random(set.clone()), cfg);
        engine
            .serve(&x)
            .iter()
            .map(|r| r.precision)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        schedule(11),
        schedule(11),
        "same seed must reproduce the schedule"
    );
    assert_ne!(schedule(11), schedule(12), "different seeds should diverge");
}

#[test]
fn sim_backed_prices_batches_like_simulate_network() {
    let set = PrecisionSet::new(&[4, 8]);
    let net = rps_net(7, &set);
    let spec = NetworkSpec::resnet18_cifar();
    let small = EvoSearch {
        population: 8,
        cycles: 3,
        mode: SearchMode::Full,
    };
    let mut sim = SimBacked::new(net, Accelerator::ours().with_search(small), spec.clone());
    let mut rng = SeededRng::new(8);
    let x = Tensor::rand_uniform(&[6, 3, 8, 8], 0.0, 1.0, &mut rng);
    let cfg = EngineConfig::default().with_max_batch(3).with_seed(1);
    let mut engine = Engine::new(
        &mut sim,
        PrecisionPolicy::Fixed(Some(Precision::new(4))),
        cfg,
    );
    let responses = engine.serve(&x);
    assert_eq!(responses.len(), 6);
    let stats = engine.stats();
    drop(engine);
    let perf = Accelerator::ours()
        .with_search(EvoSearch {
            population: 8,
            cycles: 3,
            mode: SearchMode::Full,
        })
        .simulate_network(&spec, PrecisionPair::symmetric(4));
    assert!(stats.cost.modeled);
    assert_eq!(stats.cost.frames, 6);
    let want_cycles = 6.0 * perf.total_cycles;
    assert!(
        (stats.cost.cycles - want_cycles).abs() < 1e-6 * want_cycles,
        "engine cycles {} vs simulate_network {}",
        stats.cost.cycles,
        want_cycles
    );
    let ledger = sim.ledger();
    assert_eq!(ledger.frames, 6);
    assert!((ledger.energy - stats.cost.energy).abs() < 1e-9 * ledger.energy.abs());
}

#[test]
fn sharded_serving_is_worker_count_invariant() {
    // Same seed + same submission sequence => bitwise-identical logits and
    // the identical precision schedule for 1, 2 and 8 workers, all equal to
    // single-threaded engine serving.
    let set = PrecisionSet::range(4, 8);
    let mut rng = SeededRng::new(21);
    let x = Tensor::rand_uniform(&[13, 3, 8, 8], 0.0, 1.0, &mut rng);
    let cfg = EngineConfig::default().with_max_batch(4).with_seed(33);

    let mut single = Engine::new(
        rps_net(20, &set),
        PrecisionPolicy::Random(set.clone()),
        cfg.clone(),
    );
    let reference = single.serve(&x);

    for workers in [1usize, 2, 8] {
        let mut sharded = ShardedEngine::with_factory(
            workers,
            |_| rps_net(20, &set),
            PrecisionPolicy::Random(set.clone()),
            cfg.clone(),
        );
        let responses = sharded.serve(&x);
        assert_eq!(responses.len(), reference.len());
        for (r, want) in responses.iter().zip(&reference) {
            assert_eq!(r.id, want.id);
            assert_eq!(
                r.precision, want.precision,
                "schedule diverged at {} workers, request {}",
                workers, r.id
            );
            let got: Vec<u32> = r.logits.data().iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u32> = want.logits.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                got, ref_bits,
                "logits not bitwise equal at {} workers, request {}",
                workers, r.id
            );
        }
    }
}

#[test]
fn sharded_ledger_identical_across_worker_counts() {
    // The merged cost ledger accumulates per-request unit costs in
    // request-id order, so cycles/energy/fps are identical — not just
    // close — for any worker count. The per-shard SimBacked ledgers must
    // still add up to the merged totals.
    let set = PrecisionSet::new(&[4, 8]);
    let spec = NetworkSpec::resnet18_cifar();
    let small = EvoSearch {
        population: 8,
        cycles: 3,
        mode: SearchMode::Full,
    };
    let mut rng = SeededRng::new(22);
    let x = Tensor::rand_uniform(&[12, 3, 8, 8], 0.0, 1.0, &mut rng);
    let cfg = EngineConfig::default().with_max_batch(3).with_seed(44);
    let serve = |workers: usize| {
        let mut engine = ShardedEngine::with_factory(
            workers,
            |_| {
                SimBacked::new(
                    rps_net(23, &set),
                    Accelerator::ours().with_search(small),
                    spec.clone(),
                )
            },
            PrecisionPolicy::Random(set.clone()),
            cfg.clone(),
        );
        let _ = engine.serve(&x);
        let stats = engine.stats();
        let shards = engine.shutdown();
        (stats, shards)
    };
    let (base, _) = serve(1);
    assert!(base.cost.modeled);
    assert_eq!(base.cost.frames, 12);
    for workers in [2usize, 8] {
        let (stats, shards) = serve(workers);
        assert_eq!(stats.requests, base.requests);
        assert_eq!(stats.cost.frames, base.cost.frames);
        assert_eq!(
            stats.cost.cycles.to_bits(),
            base.cost.cycles.to_bits(),
            "cycle ledger diverged at {} workers",
            workers
        );
        assert_eq!(
            stats.cost.energy.to_bits(),
            base.cost.energy.to_bits(),
            "energy ledger diverged at {} workers",
            workers
        );
        assert_eq!(
            stats.cost.fps.to_bits(),
            base.cost.fps.to_bits(),
            "fps ledger diverged at {} workers",
            workers
        );
        // Hardware accounting still adds up: per-shard ledgers sum to the
        // merged totals (up to floating-point association).
        let shard_total: f64 = shards.iter().map(|s| s.ledger().cycles).sum();
        assert!(
            (shard_total - stats.cost.cycles).abs() <= 1e-9 * stats.cost.cycles.abs(),
            "shard ledgers {} vs merged {}",
            shard_total,
            stats.cost.cycles
        );
        let shard_frames: usize = shards.iter().map(|s| s.ledger().frames).sum();
        assert_eq!(shard_frames, stats.cost.frames);
    }
}
