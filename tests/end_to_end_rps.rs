//! End-to-end integration tests of the RPS pipeline across crates:
//! data generation -> adversarial training -> attacks -> RPS evaluation.

use two_in_one_accel::prelude::*;

fn quick_rps_model(seed: u64) -> (Network, Dataset, PrecisionSet) {
    // 4 classes keeps per-class sample counts meaningful at smoke scale.
    let profile = DatasetProfile::tiny(4, 16, 96, 48);
    let (train, test) = generate(&profile, seed);
    let set = PrecisionSet::new(&[4, 6, 8]);
    let mut rng = SeededRng::new(seed);
    let mut net = zoo::preact_resnet18_rps(3, 4, profile.classes, set.clone(), &mut rng);
    let cfg = TrainConfig::pgd7(8.0 / 255.0)
        .with_rps(set.clone())
        .with_epochs(3)
        .with_batch_size(16)
        .with_seed(seed);
    adversarial_train(&mut net, &train, &cfg);
    (net, test, set)
}

#[test]
fn rps_training_learns_beyond_chance() {
    let (mut net, test, set) = quick_rps_model(1);
    let mut rng = SeededRng::new(2);
    let policy = PrecisionPolicy::Random(set);
    let acc = natural_accuracy(&mut net, &test, &policy, &mut rng);
    // 4 classes -> chance is 0.25; even 3 epochs at tiny scale beats it.
    assert!(acc > 0.4, "natural accuracy {} not above chance", acc);
}

#[test]
fn transferred_attacks_are_weaker_than_matched_attacks() {
    // The core Fig.1 phenomenon, asserted directionally: attacking at 4-bit
    // and evaluating at 8-bit must not be stronger than attacking 8-bit
    // directly (averaged over the matrix).
    let (mut net, test, _) = quick_rps_model(3);
    let mut rng = SeededRng::new(4);
    let precisions = [Precision::new(4), Precision::new(8)];
    let attack = Pgd::new(8.0 / 255.0, 10);
    let m = transfer_matrix(&mut net, &test.take(32), &attack, &precisions, 8, &mut rng);
    assert!(
        m.off_diagonal_mean() >= m.diagonal_mean() - 0.05,
        "transfer should not beat matched attacks: diag {} off {}",
        m.diagonal_mean(),
        m.off_diagonal_mean()
    );
}

#[test]
fn all_attacks_respect_the_ball_on_a_trained_model() {
    let (mut net, test, set) = quick_rps_model(5);
    let eps = 8.0 / 255.0;
    let (x, labels) = test.batch(&[0, 1, 2, 3]);
    let mut rng = SeededRng::new(6);
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(Fgsm::new(eps)),
        Box::new(FgsmRs::new(eps)),
        Box::new(Pgd::new(eps, 5)),
        Box::new(CwInf::new(eps, 5)),
        Box::new(Apgd::new(eps, 5)),
        Box::new(Bandits::new(eps, 5)),
        Box::new(EPgd::new(eps, 3, set)),
    ];
    for attack in attacks {
        let adv = attack.perturb(&mut net, &x, &labels, &mut rng);
        let linf = x.sub(&adv).abs_max();
        assert!(
            linf <= eps + 1e-5,
            "{} exceeded budget: {}",
            attack.name(),
            linf
        );
        assert!(
            adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "{} left [0,1]",
            attack.name()
        );
    }
}

#[test]
fn tradeoff_curve_spans_robustness_vs_bits() {
    let (mut net, test, _) = quick_rps_model(7);
    let mut rng = SeededRng::new(8);
    let sets = vec![PrecisionSet::range(4, 8), PrecisionSet::new(&[4])];
    let attack = Pgd::new(8.0 / 255.0, 5);
    let pts = tradeoff_curve(&mut net, &test.take(24), &attack, &sets, 8, &mut rng);
    assert_eq!(pts.len(), 2);
    assert!(pts[0].mean_bits > pts[1].mean_bits);
}

#[test]
fn free_training_is_functional_end_to_end() {
    let profile = DatasetProfile::tiny(3, 8, 48, 24);
    let (train, test) = generate(&profile, 9);
    let mut rng = SeededRng::new(10);
    let mut net = zoo::resnet50_lite(3, 4, profile.classes, &mut rng);
    let cfg = TrainConfig::with_method(AdvMethod::Free { replays: 3 }, 8.0 / 255.0)
        .with_epochs(3)
        .with_batch_size(16);
    let report = adversarial_train(&mut net, &train, &cfg);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    let policy = PrecisionPolicy::Fixed(None);
    let acc = natural_accuracy(&mut net, &test, &policy, &mut rng);
    assert!((0.0..=1.0).contains(&acc));
}
