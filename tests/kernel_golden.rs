//! Golden-fingerprint regression for the pinned scalar kernel tier.
//!
//! `KernelMode::Scalar` is the repo's bitwise reference: whatever SIMD
//! backends are added or retuned, an engine pinned to scalar kernels must
//! keep reproducing the exact logits it produced when these fingerprints
//! were captured. The fingerprints hash every response logit bit produced
//! by a fixed seeded engine run, so a single flipped mantissa bit anywhere
//! in the serving stack (quantizer grids, GEMM accumulation order, BN
//! expression shape, softmax tiers) fails the test.
//!
//! The `native` tier is intentionally *not* fingerprinted here: its f32
//! paths are checked bitwise against scalar by the differential suite, and
//! its integer serving path is a different (per-sample-deterministic)
//! numeric by design.

use two_in_one_accel::prelude::*;

/// FNV-1a over the little-endian bytes of each logit's bit pattern, in
/// response order.
fn fingerprint(logits: &[Tensor]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in logits {
        for v in t.data() {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        }
    }
    h
}

#[test]
fn scalar_kernel_reproduces_pinned_logits() {
    // Captured on the commit that introduced the SIMD dispatch layer, with
    // the engine pinned to scalar kernels — the numerics every prior
    // release served. Do not regenerate casually: a change here means the
    // scalar tier broke bitwise compatibility.
    let golden: [(Option<u8>, u64); 6] = [
        (None, 0x587f_e254_c4df_8c20),
        (Some(4), 0xb5f8_182b_3ac9_78be),
        (Some(5), 0xdb2c_09fa_646d_c06c),
        (Some(6), 0x6fae_0ca0_3ec8_8183),
        (Some(7), 0x349e_da3a_52bc_5e1b),
        (Some(8), 0x43ed_97e4_8b45_cb6f),
    ];
    let net = zoo::preact_resnet18_rps(3, 4, 3, PrecisionSet::range(4, 8), &mut SeededRng::new(1));
    let cfg = EngineConfig::default()
        .with_max_batch(8)
        .with_seed(7)
        .with_kernel(KernelMode::Scalar);
    let mut eng = Engine::new(net, PrecisionPolicy::Fixed(None), cfg);
    let x = Tensor::rand_uniform(&[8, 3, 8, 8], 0.0, 1.0, &mut SeededRng::new(2));
    for (bits, want) in golden {
        let p = bits.map(Precision::new);
        for i in 0..x.shape()[0] {
            eng.try_submit_pinned(x.index_axis0(i), p)
                .expect("submission is a valid image");
        }
        let logits: Vec<Tensor> = eng.flush().into_iter().map(|r| r.logits).collect();
        assert_eq!(
            fingerprint(&logits),
            want,
            "scalar-tier logits drifted at precision {bits:?}"
        );
    }
}
