//! # two-in-one-accel
//!
//! A from-scratch Rust reproduction of **"2-in-1 Accelerator: Enabling
//! Random Precision Switch for Winning Both Adversarial Robustness and
//! Efficiency"** (Fu, Zhao, Yu, Li, Lin — MICRO 2021).
//!
//! The paper co-designs an algorithm and an accelerator:
//!
//! * **RPS (Random Precision Switch)** — adversarially train a quantized DNN
//!   while randomly switching its precision every iteration (with switchable
//!   batch-norm), then randomly switch precision at inference. Adversarial
//!   examples crafted at one precision transfer poorly to another, so the
//!   switch acts as an in-situ ensemble defense that *also* cuts compute.
//! * **A precision-scalable accelerator** whose MAC unit spatially tiles
//!   small bit-serial units (marrying temporal flexibility with spatial
//!   efficiency), plus an evolutionary dataflow/micro-architecture optimizer.
//!
//! This crate is a facade over the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`tensor`] | dense tensors, GEMM, im2col, pooling, seeded RNG |
//! | [`data`] | synthetic dataset profiles (CIFAR-10/100-, SVHN-, ImageNet-like) |
//! | [`nn`] | layers, switchable BN, model zoo, workload shape tables |
//! | [`quant`] | linear quantizers and precision sets |
//! | [`engine`] | batched, policy-driven serving: `Backend`, `Engine`, `SimBacked` |
//! | [`serve`] | TCP serving front-end: wire protocol, admission control, metrics |
//! | [`attack`] | FGSM, FGSM-RS, PGD, CW-∞, APGD, Bandits, E-PGD |
//! | [`core`] | RPS training/inference, robust evaluation, transfer matrices |
//! | [`accel`] | MAC-unit models (temporal/spatial/spatial-temporal), DNNGuard |
//! | [`dataflow`] | loop-nest dataflows, performance predictor, Alg. 2 search |
//! | [`sim`] | end-to-end accelerator simulation (Figs. 2, 7–10) |
//!
//! # Quickstart
//!
//! ```
//! use two_in_one_accel::prelude::*;
//!
//! // Train a tiny RPS model on synthetic data...
//! let profile = DatasetProfile::tiny(3, 8, 48, 24);
//! let (train, test) = generate(&profile, 0);
//! let set = PrecisionSet::new(&[4, 6, 8]);
//! let mut rng = SeededRng::new(1);
//! let mut net = zoo::preact_resnet18_rps(3, 4, 3, set.clone(), &mut rng);
//! let cfg = TrainConfig::pgd7(8.0 / 255.0).with_rps(set.clone()).with_epochs(1);
//! adversarial_train(&mut net, &train, &cfg);
//!
//! // ...and measure robust accuracy under RPS inference (served batched
//! // through the engine).
//! let attack = Pgd::new(8.0 / 255.0, 3);
//! let policy = PrecisionPolicy::Random(set);
//! let acc = robust_accuracy(&mut net, &test.take(8), &attack, &policy, &policy, 4, &mut rng);
//! assert!((0.0..=1.0).contains(&acc));
//! ```

pub use tia_accel as accel;
pub use tia_attack as attack;
pub use tia_core as core;
pub use tia_data as data;
pub use tia_dataflow as dataflow;
pub use tia_engine as engine;
pub use tia_nn as nn;
pub use tia_quant as quant;
pub use tia_serve as serve;
pub use tia_sim as sim;
pub use tia_tensor as tensor;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use tia_accel::{MacKind, MacUnit, PrecisionPair};
    pub use tia_attack::{Apgd, Attack, Bandits, CwInf, EPgd, Fgsm, FgsmRs, Pgd, TargetModel};
    pub use tia_core::{
        adversarial_train, natural_accuracy, robust_accuracy, tradeoff_curve, transfer_matrix,
        AdvMethod, TrainConfig,
    };
    pub use tia_data::{generate, Dataset, DatasetProfile};
    pub use tia_dataflow::{ArchConfig, Dataflow, EvoSearch, SearchMode, Workload};
    pub use tia_engine::{
        Backend, BatchCost, Engine, EngineConfig, PolicyGranularity, PrecisionPolicy,
        ShardedEngine, SimBacked,
    };
    pub use tia_nn::{workload::NetworkSpec, zoo, Mode, Network};
    pub use tia_quant::{Precision, PrecisionSet};
    pub use tia_serve::{Client, Server, ServerConfig, WirePolicy};
    pub use tia_sim::{dnnguard_throughput, Accelerator};
    pub use tia_tensor::{KernelMode, SeededRng, Tensor};
}
